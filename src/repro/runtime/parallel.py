"""Simulated multithreaded execution of transformed programs.

The paper runs its transformed loops on real cores through GOMP; here N
*virtual threads* execute on the MiniC machine with a cycle-accounting
model:

* **DOALL, static chunking** — the iteration space is split into N
  contiguous chunks; each chunk executes with ``__tid`` bound to its
  thread and cycles charged to that thread's sink.  Chunks run one
  after another in simulation, which is sound *because* expansion makes
  them independent — and that independence is checked, not assumed: a
  byte-level race detector compares every thread's footprint
  (this substitutes for the paper's "correct on real hardware"
  evidence).  Loop makespan = max over threads + fork/join cost.

* **DOACROSS, dynamic chunk=1** — iterations run in program order
  (iteration k on thread k mod N), so semantics are trivially
  preserved; the *timing* is modeled with a pipelining recurrence: the
  statements the pipeline marked as carrying surviving cross-thread
  dependences (``serial_stmt_origins``) form a serialized section that
  iteration k may only enter after iteration k-1 left it.  Stall time
  becomes the thread's ``wait_cycles`` — the paper's
  ``do_wait``/``cpu_relax`` bars in Figure 12.

The whole-program clock advances by each loop's *makespan* rather than
its total work, so end-to-end cycles give the paper's total-program
speedup (Figure 11b) by simple division.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..diagnostics import (
    DiagnosableError, DiagnosticSink, diagnostic_of,
)
from ..frontend import ast
from ..obs import NULL_TRACER, ensure_tracer
from ..interp.machine import (
    BreakSignal, ContinueSignal, CostSink, InterpError, Machine,
    WatchdogTimeout, resolve_engine,
)
from ..interp.memory import MemoryError_
from ..interp.trace import RaceChecker
from ..analysis.profiler import find_control_decl
from ..transform.pipeline import (
    DOALL, QuarantinedLoop, TransformResult, TransformedLoop, parse_loop_kind,
)
from ..transform.rewrite import origin_of
from . import sync
from .stats import LoopExecution, ParallelOutcome, RecoveryEvent, ThreadStats


class ParallelError(DiagnosableError):
    """The parallel runtime cannot execute a loop as planned."""

    default_code = "RT-PLAN"
    default_phase = "runtime"


class RaceError(ParallelError):
    """Cross-thread conflict detected in a supposedly-independent loop."""

    default_code = "RT-RACE"


#: failures a permissive run recovers from by sequential re-execution.
#: WatchdogTimeout is an InterpError; injected faults subclass it too.
RECOVERABLE = (ParallelError, InterpError, MemoryError_)


def _canonical_bounds(machine: Machine, loop: ast.For):
    """(control decl, lo, hi, step, inclusive) of a canonical for loop.

    Every rejection carries the loop label and source location in its
    diagnostic, so the failure stays attributable even when the loop
    was reached through nested calls."""
    control = find_control_decl(loop)
    if control is None:
        raise ParallelError(
            f"loop {loop.label!r} is not canonical (no induction variable)",
            code="RT-NONCANONICAL", loop=loop.label, loc=loop.loc,
        )
    cond = loop.cond
    if not (isinstance(cond, ast.Binary) and cond.op in ("<", "<=")
            and isinstance(cond.left, ast.Ident)
            and cond.left.decl is control):
        raise ParallelError(
            f"loop {loop.label!r} condition must be 'i < bound' or "
            "'i <= bound'",
            code="RT-NONCANONICAL", loop=loop.label, loc=loop.loc,
        )
    step_expr = loop.step
    if isinstance(step_expr, ast.Unary) and step_expr.op in ("++", "p++"):
        step = 1
    elif isinstance(step_expr, ast.Assign) and step_expr.op == "+=":
        step = int(machine.eval(step_expr.value))
    else:
        raise ParallelError(
            f"loop {loop.label!r} step must be i++ or i += c",
            code="RT-NONCANONICAL", loop=loop.label, loc=loop.loc,
        )
    addr = machine.var_addr(control)
    lo = int(machine.memory.read_scalar(addr, control.ctype.fmt,
                                        control.ctype.size))
    hi = int(machine.eval(cond.right))
    return control, addr, lo, hi, step, cond.op == "<="


class MachineSnapshot:
    """Enough machine + memory state to re-execute a loop from scratch
    after a failed parallel attempt.  The bump allocator never moves
    earlier blocks, so truncating the allocation list to the saved
    length and restoring the byte image rewinds the address space
    exactly; allocation records that survive are shared objects whose
    mutable fields are restored in place (freelist buckets hold the
    same objects)."""

    def __init__(self, machine: Machine):
        memory = machine.memory
        if memory.shared:
            # buffer-backed region: capture only the dirty span — the
            # segment beyond brk is still zero-filled
            self.data = bytes(memory.data[:memory.brk])
        else:
            self.data = bytes(memory.data)
        self.brk = memory.brk
        self.n_allocs = len(memory._allocs)
        self.alloc_state = [
            (a.live, a.label, a.tag) for a in memory._allocs
        ]
        self.freelist = {
            size: list(bucket) for size, bucket in memory._freelist.items()
        }
        self.live_bytes = dict(memory.live_bytes)
        self.peak_bytes = dict(memory.peak_bytes)
        self.total_allocs = memory.total_allocs
        self.n_output = len(machine.output)
        self.strlit_cache = dict(machine._strlit_cache)
        self.tid = machine.tid

    def restore(self, machine: Machine) -> None:
        memory = machine.memory
        del memory._allocs[self.n_allocs:]
        del memory._starts[self.n_allocs:]
        for record, (live, label, tag) in zip(memory._allocs,
                                              self.alloc_state):
            record.live = live
            record.label = label
            record.tag = tag
        if memory.shared:
            # restore in place: other processes map the same buffer, so
            # the view object must never be replaced
            n = len(self.data)
            memory.data[:n] = self.data
            if memory.brk > n:
                memory.data[n:memory.brk] = bytes(memory.brk - n)
        else:
            memory.data = bytearray(self.data)
        memory.brk = self.brk
        memory._freelist = {
            size: list(bucket) for size, bucket in self.freelist.items()
        }
        memory.live_bytes = dict(self.live_bytes)
        memory.peak_bytes = dict(self.peak_bytes)
        memory.total_allocs = self.total_allocs
        del machine.output[self.n_output:]
        machine._strlit_cache = dict(self.strlit_cache)
        machine.tid = self.tid
        # the allocation table was rewritten wholesale: cached lookup
        # records may have been truncated out of the address space
        memory.invalidate_lookup_cache()


def _recover_sequential(
    runner,
    machine: Machine,
    loop: ast.LoopStmt,
    execution: LoopExecution,
    snapshot: MachineSnapshot,
    exc: BaseException,
    races,
) -> None:
    """Permissive-mode recovery: roll the machine back to its pre-loop
    state and run the loop sequentially on pristine memory.  Injected
    faults are suspended for the retry (the fault hit the parallel
    attempt; the fallback models failover to the untransformed path).
    A watchdog timeout during the retry itself propagates — that is a
    genuine runaway, not a parallelization artifact."""
    snapshot.restore(machine)
    diag = diagnostic_of(exc)
    if diag.loop is None:
        diag.loop = loop.label
    runner.outcome.recoveries.append(
        RecoveryEvent(loop.label, diag, races=races)
    )
    tracer = getattr(runner, "tracer", NULL_TRACER)
    if tracer:
        tracer.event("snapshot-rollback", 0, machine.cost.cycles,
                     loop=loop.label, cause=diag.code)
        tracer.metrics.inc("runtime.recoveries")
        if races:
            tracer.metrics.inc("runtime.races_recovered", len(races))
        if isinstance(exc, WatchdogTimeout):
            tracer.event("watchdog-trip", 0, machine.cost.cycles,
                         loop=loop.label)
            tracer.metrics.inc("runtime.watchdog_trips")
    sink = getattr(runner, "sink", None)
    if sink is not None:
        sink.emit(diag)
        sink.warning(
            "RT-RECOVERED",
            f"loop {loop.label!r} re-executed sequentially after "
            f"{diag.code}",
            loop=loop.label, loc=loop.loc, phase="runtime",
        )
    suspend = getattr(runner, "suspend_faults", None)
    if suspend is not None:
        suspend()
    try:
        machine.exec_loop_sequential(loop)
    finally:
        resume = getattr(runner, "resume_faults", None)
        if resume is not None:
            resume()
    # the aborted attempt's loads/stores stay in the thread sinks; sync
    # the bandwidth ledger so the next execution's diff starts clean
    from ..interp.machine import COSTS
    execution._mem_seen = [
        (execution.threads[t].sink.loads
         + execution.threads[t].sink.stores) * COSTS["load"]
        for t in range(execution.nthreads)
    ]


class _BaseController:
    """Common scheduling scaffolding, plus the robustness guard: in
    permissive mode (``runner.strict == False``) every parallel loop
    execution is checkpointed, and a recoverable failure or a detected
    race rolls back and re-runs the loop sequentially instead of
    killing the program."""

    def __init__(self, runner: "ParallelRunner", tloop: TransformedLoop):
        self.runner = runner
        self.tloop = tloop
        self.execution = runner.outcome.loops.setdefault(
            tloop.loop.label, LoopExecution(tloop.loop.label, runner.nthreads)
        )
        #: conflicts found by the checker in the most recent region
        self._region_races: List[Tuple[int, str]] = []
        #: serialized-statement origins whose dropped sync tokens were
        #: already reported (one diagnostic per origin, not per wait)
        self._drops_reported: Set[int] = set()

    # The baseline shim runner predates the robustness knobs; default
    # to strict / no-watchdog / no-faults / no-tracer when absent.
    @property
    def _strict(self) -> bool:
        return getattr(self.runner, "strict", True)

    @property
    def _tracer(self):
        return getattr(self.runner, "tracer", NULL_TRACER)

    def __call__(self, machine: Machine, loop: ast.LoopStmt) -> None:
        if self._strict:
            self._watchdogged(machine, loop, self._parallel_exec)
            return
        snapshot = MachineSnapshot(machine)
        try:
            self._watchdogged(machine, loop, self._parallel_exec)
        except RECOVERABLE as exc:
            _recover_sequential(
                self.runner, machine, loop, self.execution, snapshot,
                exc, self._region_races,
            )
            return
        if self._region_races:
            races = self._region_races
            exc = RaceError(
                f"{len(races)} cross-thread conflicts in loop "
                f"{loop.label!r}",
                loop=loop.label, loc=loop.loc,
                data={"races": races[:5]},
            )
            _recover_sequential(
                self.runner, machine, loop, self.execution, snapshot,
                exc, races,
            )

    def _watchdogged(self, machine: Machine, loop: ast.LoopStmt,
                     body) -> None:
        """Bound one controlled loop execution by the runner's watchdog
        (controllers bypass the machine's own per-loop guard)."""
        budget = getattr(self.runner, "watchdog", None)
        if budget is None:
            body(machine, loop)
            return
        machine.push_watchdog(budget, loop.label)
        try:
            body(machine, loop)
        finally:
            machine.pop_watchdog()

    def _begin_region(self) -> None:
        self._region_races = []
        if self.runner.checker is not None:
            self.runner.checker.begin_region()

    def _end_region(self) -> None:
        if self.runner.checker is not None:
            self._region_races = self.runner.checker.end_region()
            if self._strict:
                self.runner.outcome.races.extend(self._region_races)

    def _set_thread(self, machine: Machine, tid: int) -> None:
        machine.tid = tid
        machine.cost = self.execution.threads[tid].sink
        if self.runner.checker is not None:
            self.runner.checker.current_thread = tid

    def _restore(self, machine: Machine, saved: CostSink) -> None:
        machine.tid = 0
        machine.cost = saved
        if self.runner.checker is not None:
            self.runner.checker.current_thread = 0


class _DoallController(_BaseController):
    """Static chunk scheduling over a canonical for loop."""

    def _parallel_exec(self, machine: Machine, loop: ast.For) -> None:
        execution = self.execution
        execution.executions += 1
        nthreads = self.runner.nthreads
        if not isinstance(loop, ast.For):
            raise ParallelError(
                f"DOALL loop {loop.label!r} must be a canonical for loop",
                code="RT-NONCANONICAL", loop=loop.label, loc=loop.loc,
            )
        if loop.init is not None:
            machine.exec_stmt(loop.init)
        control, addr, lo, hi, step, inclusive = _canonical_bounds(
            machine, loop
        )
        if inclusive:
            hi += 1
        total = max(0, -(-(hi - lo) // step))
        if self.runner.checker is not None:
            self.runner.checker.exempt |= set(
                range(addr, addr + control.ctype.size)
            )
        saved = machine.cost
        t0 = saved.cycles          # program clock at loop entry
        tracer = self._tracer
        start_cycles = [0.0] * nthreads
        self._begin_region()
        try:
            for tid in range(nthreads):
                chunk_lo = tid * total // nthreads
                chunk_hi = (tid + 1) * total // nthreads
                if chunk_lo >= chunk_hi:
                    continue
                self._set_thread(machine, tid)
                stats = execution.threads[tid]
                stats.sync_cycles += sync.STATIC_CHUNK_SETUP
                start_cycles[tid] = stats.sink.cycles
                machine.memory.write_scalar(
                    addr, control.ctype.fmt, lo + chunk_lo * step
                )
                for _k in range(chunk_lo, chunk_hi):
                    it_start = stats.sink.cycles if tracer else 0.0
                    if loop.cond is not None:
                        machine.eval(loop.cond)
                    try:
                        machine.exec_stmt(loop.body)
                    except ContinueSignal:
                        pass
                    except BreakSignal:
                        raise ParallelError(
                            f"break inside DOALL loop {loop.label!r}",
                            code="RT-BREAK", loop=loop.label, loc=loop.loc,
                        )
                    if loop.step is not None:
                        machine.eval(loop.step)
                    if tracer:
                        tracer.event(
                            "iteration", tid,
                            t0 + (it_start - start_cycles[tid]),
                            dur=stats.sink.cycles - it_start,
                            loop=loop.label, k=_k,
                        )
                    stats.iterations += 1
                    execution.iterations += 1
        finally:
            self._end_region()
            self._restore(machine, saved)
        spans = [
            execution.threads[t].sink.cycles - start_cycles[t]
            for t in range(nthreads)
        ]
        if tracer:
            for t in range(nthreads):
                if spans[t] > 0:
                    tracer.event(
                        "doall-chunk", t, t0, dur=spans[t],
                        loop=loop.label,
                        iterations=execution.threads[t].iterations,
                    )
        makespan = max(spans) if spans else 0.0
        # shared memory system: N threads' combined traffic cannot beat
        # the controller's bandwidth, which caps memory-bound loops
        from ..interp.machine import COSTS
        mem_cycles = sum(
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ) - sum(execution._mem_seen)
        execution._mem_seen = [
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ]
        makespan = max(makespan, sync.bandwidth_makespan(mem_cycles))
        fork = sync.fork_join_cost(nthreads)
        execution.makespan += makespan
        execution.runtime_cycles += fork
        machine.cost.cycles += makespan + fork
        # leave the control variable at its sequential exit value
        machine.memory.write_scalar(addr, control.ctype.fmt, lo + total * step)


class _DoacrossController(_BaseController):
    """Dynamic scheduling (chunk size 1) with pipelined serial sections."""

    def _parallel_exec(self, machine: Machine, loop: ast.LoopStmt) -> None:
        execution = self.execution
        execution.executions += 1
        nthreads = self.runner.nthreads
        serial_origins = self.tloop.serial_stmt_origins
        saved = machine.cost
        t0 = saved.cycles          # program clock at loop entry
        tracer = self._tracer

        thread_free = [0.0] * nthreads
        #: per serialized-statement origin: finish time of that statement
        #: in the latest iteration (each carried-dependence chain gets
        #: its own post/wait token, so independent serial sections
        #: pipeline independently — input cursor vs output emit)
        sync_done: Dict[int, float] = {}
        k = 0

        control = None
        addr = None
        if isinstance(loop, ast.For):
            if loop.init is not None:
                machine.exec_stmt(loop.init)
            control = find_control_decl(loop)
            if control is not None and self.runner.checker is not None:
                addr = machine.var_addr(control)
                self.runner.checker.exempt |= set(
                    range(addr, addr + control.ctype.size)
                )

        body = loop.body
        stmts = body.stmts if isinstance(body, ast.Block) else [body]
        self._begin_region()
        try:
            chunk = max(1, self.runner.chunk)
            while True:
                tid = (k // chunk) % nthreads
                self._set_thread(machine, tid)
                stats = execution.threads[tid]
                # evaluate the loop condition as this thread's work
                if isinstance(loop, ast.DoWhile):
                    pass  # condition evaluated after the body
                elif loop.cond is not None:
                    if not machine.eval(loop.cond):
                        break
                stats.sync_cycles += sync.DYNAMIC_DEQUEUE
                segments = self._run_iteration(
                    machine, stmts, serial_origins, stats
                )
                if isinstance(loop, ast.For) and loop.step is not None:
                    machine.eval(loop.step)
                stats.iterations += 1
                execution.iterations += 1
                # pipelining recurrence: walk the iteration's segments
                # on this thread's clock; each serialized statement
                # waits on its own token from the previous iteration
                clock = thread_free[tid] + sync.DYNAMIC_DEQUEUE
                iter_start = clock
                for origin, is_serial, cycles in segments:
                    if is_serial:
                        token = sync_done.get(origin, 0.0)
                        token = self._checked_token(
                            loop, origin, k, tid, token
                        )
                        if token > clock:
                            stats.wait_cycles += token - clock
                            if tracer:
                                tracer.event(
                                    "token-wait", tid, t0 + clock,
                                    dur=token - clock, loop=loop.label,
                                    origin=origin, k=k,
                                )
                                tracer.metrics.inc("runtime.token_waits")
                                tracer.metrics.inc(
                                    "runtime.token_wait_cycles",
                                    token - clock,
                                )
                            clock = token
                        stats.sync_cycles += (
                            sync.POST_COST + sync.WAIT_CHECK_COST
                        )
                        clock += cycles
                        sync_done[origin] = clock
                        if tracer:
                            tracer.event(
                                "token-post", tid, t0 + clock,
                                loop=loop.label, origin=origin, k=k,
                            )
                            tracer.metrics.inc("runtime.token_posts")
                    else:
                        clock += cycles
                if tracer:
                    tracer.event(
                        "iteration", tid, t0 + iter_start,
                        dur=clock - iter_start, loop=loop.label, k=k,
                    )
                thread_free[tid] = clock
                k += 1
                if isinstance(loop, ast.DoWhile):
                    if not machine.eval(loop.cond):
                        break
        except BreakSignal:
            pass
        finally:
            self._end_region()
            self._restore(machine, saved)
        makespan = max(thread_free) if thread_free else 0.0
        from ..interp.machine import COSTS
        mem_cycles = sum(
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ) - sum(execution._mem_seen)
        execution._mem_seen = [
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ]
        makespan = max(makespan, sync.bandwidth_makespan(mem_cycles))
        fork = sync.fork_join_cost(nthreads)
        execution.makespan += makespan
        execution.runtime_cycles += fork
        machine.cost.cycles += makespan + fork

    def _run_iteration(
        self,
        machine: Machine,
        stmts: List[ast.Stmt],
        serial_origins: Set[int],
        stats: ThreadStats,
    ) -> List[Tuple[int, bool, float]]:
        """Execute one iteration statement-by-statement; returns
        ``(stmt origin, is_serial, cycles)`` segments in order."""
        segments: List[Tuple[int, bool, float]] = []
        checker = self.runner.checker
        try:
            for stmt in stmts:
                origin = origin_of(stmt)
                is_serial = origin in serial_origins
                if is_serial and checker is not None:
                    checker.enabled = False
                before = machine.cost.cycles
                try:
                    machine.exec_stmt(stmt)
                finally:
                    segments.append(
                        (origin, is_serial, machine.cost.cycles - before)
                    )
                    if is_serial and checker is not None:
                        checker.enabled = True
        except ContinueSignal:
            pass
        return segments

    def _checked_token(self, loop: ast.LoopStmt, origin: int, k: int,
                       tid: int, token: float) -> float:
        """Validate the post/wait token for one serialized statement.

        Fault injectors may drop or garble the token in flight; the
        runtime cross-checks what the consumer observed against the
        producer-side ledger (``sync_done``).  A mismatch is a detected
        synchronization fault: strict mode raises, permissive mode
        reports it once per statement and repairs from the ledger."""
        fire = getattr(self.runner, "faults_fire", None)
        if fire is None:
            return token
        observed = fire("doacross-wait", token, loop=loop.label,
                        origin=origin, k=k, tid=tid)
        if observed == token:
            return token
        if self._strict:
            raise ParallelError(
                f"DOACROSS sync token for statement {origin} lost at "
                f"iteration {k} of loop {loop.label!r}",
                code="RT-SYNC-DROP", loop=loop.label, loc=loop.loc,
                data={"origin": origin, "iteration": k},
            )
        sink = getattr(self.runner, "sink", None)
        if sink is not None and origin not in self._drops_reported:
            self._drops_reported.add(origin)
            sink.warning(
                "RT-SYNC-DROP",
                f"DOACROSS sync token for statement {origin} lost at "
                f"iteration {k} of loop {loop.label!r}; repaired from "
                "the producer-side ledger",
                loop=loop.label, loc=loop.loc,
                data={"origin": origin, "iteration": k},
            )
        return token


class _QuarantineController:
    """Executes a quarantined loop via its fallback: SpiceC-style
    runtime privatization when the loop's profile survived, with plain
    sequential execution as the last resort if even that fails."""

    def __init__(self, runner: "ParallelRunner", inner, label: str):
        self.runner = runner
        self.inner = inner
        self.label = label

    def __call__(self, machine: Machine, loop: ast.LoopStmt) -> None:
        runner = self.runner
        if runner.tracer:
            runner.tracer.event(
                "quarantine-fallback", 0, machine.cost.cycles,
                loop=self.label,
            )
            runner.tracer.metrics.inc("runtime.quarantine_fallbacks")
        if runner.strict:
            self.inner(machine, loop)
            return
        snapshot = MachineSnapshot(machine)
        try:
            self.inner(machine, loop)
        except RECOVERABLE as exc:
            execution = runner.outcome.loops.setdefault(
                self.label, LoopExecution(self.label, runner.nthreads)
            )
            _recover_sequential(
                runner, machine, loop, execution, snapshot, exc, [],
            )


class ParallelRunner:
    """Executes a transformed program with N virtual threads.

    ``strict=False`` (permissive mode) arms the robustness layer:
    recoverable failures inside a parallel loop roll back to a
    checkpoint and re-execute sequentially, quarantined loops from a
    permissive transform run under their fallback, and nothing short of
    a genuine runaway (watchdog timeout on the *sequential* retry)
    escapes.  ``watchdog`` bounds every loop execution to that many
    interpreted statements.  ``fault_injectors`` are
    :mod:`repro.runtime.faults` objects wired in for testing."""

    def __init__(
        self,
        tresult: TransformResult,
        nthreads: int,
        check_races: bool = True,
        chunk: int = 1,
        strict: bool = True,
        sink: Optional[DiagnosticSink] = None,
        watchdog: Optional[int] = None,
        fault_injectors: Optional[List] = None,
        tracer=None,
        engine: Optional[str] = None,
        backend: str = "simulated",
        workers: Optional[int] = None,
        mc: Optional[dict] = None,
        session=None,
    ):
        if tresult.program is None or tresult.sema is None:
            raise ParallelError("transform result has no program",
                                code="RT-NOPROGRAM")
        self.tresult = tresult
        self.nthreads = nthreads
        self.chunk = chunk
        self.strict = strict
        # empty sinks are falsy (len 0) — compare to None explicitly
        self.sink = sink if sink is not None else DiagnosticSink()
        self.tracer = ensure_tracer(tracer)
        self.watchdog = watchdog
        self.outcome = ParallelOutcome(nthreads)
        # backend seam: "process" executes capable loops on real worker
        # processes over one shared-memory segment (multicore module);
        # "simulated" keeps the virtual-thread interleaving.  When the
        # host cannot run the process backend, degrade with a warning —
        # every simulated run is a correct execution of the same plan.
        requested = backend or "simulated"
        if requested not in ("simulated", "process"):
            raise ParallelError(f"unknown backend {backend!r}",
                                code="RT-BACKEND")
        self.backend = "simulated"
        self.workers = workers
        self.session = None
        memory = None
        # the parallel runtime needs observer fan-out (race checker)
        # and per-statement watchdog accounting, so the bare variant
        # is promoted to the instrumented bytecode engine; the native
        # tier stays native (its own fallback is the bare closures)
        eng = resolve_engine(engine)
        if eng == "bytecode-bare":
            eng = "bytecode"
        if session is not None:
            # adopt a pre-built (possibly pooled) session: the caller
            # guarantees it was created for this tresult's program and
            # was reset since its last run
            self.session = session
            memory = session.memory
            self.backend = "process"
            session.tracer = self.tracer
            session.sink = self.sink
        elif requested == "process":
            from .multicore import ProcessSession, process_backend_available
            ok, why = process_backend_available()
            if not ok:
                self.sink.warning(
                    "MC-UNAVAILABLE",
                    f"process backend unavailable ({why}); "
                    "falling back to simulated", phase="runtime",
                )
            else:
                self.session = ProcessSession(
                    tresult.program, tresult.sema, nthreads,
                    workers=workers, options=mc, engine=eng,
                )
                memory = self.session.memory
                self.backend = "process"
                self.session.tracer = self.tracer
                self.session.sink = self.sink
        self.outcome.backend = self.backend
        try:
            if eng == "native" and check_races:
                # race observation hooks every access in Python; the
                # native tier cannot fan accesses out, so the parent
                # machine's native dispatch gate stays closed and the
                # sequential sections run on the bare fallback instead
                self.sink.note(
                    "NL-OBSERVERS",
                    "race checking keeps the parent machine on the "
                    "bytecode fallback; pass check_races=False for "
                    "native parent execution", phase="runtime",
                )
            self.machine = Machine(tresult.program, tresult.sema,
                                   max_loop_steps=watchdog, engine=eng,
                                   tracer=self.tracer, memory=memory)
            self.machine.nthreads = nthreads
            if self.tracer:
                self.tracer.metrics.set("interp.engine",
                                        self.machine.engine)
                self.tracer.metrics.set("runtime.backend", self.backend)
            self.checker: Optional[RaceChecker] = None
            if check_races:
                self.checker = RaceChecker()
                self.machine.observers.append(self.checker)
            for tloop in tresult.loops:
                if self.session is not None:
                    from .multicore import (
                        _ProcessDoacrossController, _ProcessDoallController,
                    )
                    controller = (
                        _ProcessDoallController(self, tloop, self.session)
                        if tloop.kind == DOALL
                        else _ProcessDoacrossController(
                            self, tloop, self.session)
                    )
                else:
                    controller = (
                        _DoallController(self, tloop)
                        if tloop.kind == DOALL
                        else _DoacrossController(self, tloop)
                    )
                self.machine.loop_controllers[tloop.loop.nid] = controller
            self._install_quarantined()
            # machine-level injectors instrument the parent interpreter
            # (and force MC-INSTRUMENTED fallback); process-level chaos
            # targets the worker pool itself and must NOT disarm the
            # process backend — it routes to the session's chaos list
            self.fault_injectors = []
            for injector in list(fault_injectors or []):
                if getattr(injector, "process_level", False):
                    injector.runner = self
                    if self.session is not None:
                        self.session.chaos.append(injector)
                else:
                    self.fault_injectors.append(injector)
                    injector.install(self)
        except BaseException:
            if self.session is not None:
                self._release_session()
            raise

    # -- fault-injection hooks --------------------------------------------
    def suspend_faults(self) -> None:
        for injector in self.fault_injectors:
            injector.suspend()

    def resume_faults(self) -> None:
        for injector in self.fault_injectors:
            injector.resume()

    def faults_fire(self, point: str, value=None, **ctx):
        """Give every active injector a chance to perturb ``value`` at a
        named runtime point (e.g. ``doacross-wait``)."""
        for injector in self.fault_injectors:
            value = injector.at(point, value, **ctx)
        return value

    # -- quarantine fallback ----------------------------------------------
    def _install_quarantined(self) -> None:
        """Wire quarantined loops (permissive transform) to their
        fallback.  ``sequential`` needs nothing — the loop simply has
        no controller.  ``runtime-priv`` reuses the SpiceC baseline's
        access-control layer on this machine, with the original-program
        private sites translated into the transformed program."""
        quarantined = getattr(self.tresult, "quarantined", None) or []
        plans = []
        for q in quarantined:
            if q.fallback != QuarantinedLoop.RUNTIME_PRIV:
                continue
            try:
                clone_loop = ast.find_loop(self.tresult.program, q.label)
            except KeyError:
                self.sink.warning(
                    "RT-QUARANTINE-LOST",
                    f"quarantined loop {q.label!r} not found in the "
                    "transformed program; it will run sequentially",
                    loop=q.label, phase="runtime",
                )
                continue
            plans.append((q, clone_loop))
        if not plans:
            return
        from ..baselines.runtime_priv import (
            AccessControl, _BaselineController, _LoopPlan,
            _serial_stmts_for,
        )
        # private sites are original-program nids; translate to clones
        orig_sites: Set[int] = set()
        for q, _clone_loop in plans:
            orig_sites |= q.priv.private_sites
        clone_sites: Set[int] = set()
        for fn in self.tresult.program.functions():
            for node in fn.body.walk():
                if origin_of(node) in orig_sites:
                    clone_sites.add(node.nid)
        access_control = AccessControl(self.machine, clone_sites)
        access_control.checker = self.checker
        host = _QuarantineHost(self, access_control)
        for q, clone_loop in plans:
            # serial statements stay keyed by original nids: the
            # DOACROSS controller compares origin_of(stmt) against them
            serial = _serial_stmts_for(
                q.loop, q.profile, q.priv.private_sites
            )
            plan = _LoopPlan(clone_loop, parse_loop_kind(q.loop),
                             clone_sites, serial)
            inner = _BaselineController(host, plan)
            self.machine.loop_controllers[clone_loop.nid] = \
                _QuarantineController(self, inner, q.label)

    # -- execution ---------------------------------------------------------
    def run(self, entry: str = "main",
            raise_on_race: bool = True) -> ParallelOutcome:
        outcome = self.outcome
        try:
            with self.tracer.phase("run", cat="runtime",
                                   nthreads=self.nthreads):
                outcome.exit_code = self.machine.run(entry)
        except DiagnosableError as exc:
            self.sink.emit(diagnostic_of(exc))
            outcome.diagnostics = list(self.sink.diagnostics)
            if isinstance(exc, WatchdogTimeout):
                self.tracer.metrics.inc("runtime.watchdog_trips")
            raise
        finally:
            self._close_session()
        outcome.output = list(self.machine.output)
        outcome.total_cycles = self.machine.cost.cycles
        outcome.peak_memory = self.machine.memory.peak_footprint()
        if self.tracer:
            outcome.trace = self.tracer
            metrics = self.tracer.metrics
            metrics.inc("runtime.races_detected", len(outcome.races))
            metrics.set("runtime.total_cycles", outcome.total_cycles)
            metrics.set("runtime.peak_memory_bytes", outcome.peak_memory)
            for label, ex in outcome.loops.items():
                prefix = f"runtime.loop.{label}"
                metrics.set(f"{prefix}.makespan", ex.makespan)
                metrics.set(f"{prefix}.iterations", ex.iterations)
                bd = ex.breakdown()
                for key, value in bd.items():
                    metrics.set(f"{prefix}.{key}_cycles", value)
        if outcome.races:
            if raise_on_race and self.strict:
                sample = outcome.races[:5]
                raise RaceError(
                    f"{len(outcome.races)} cross-thread conflicts detected "
                    f"(first: {sample}); the expansion transform failed to "
                    "privatize some contended structure",
                    data={"races": sample},
                )
            if not self.strict:
                self.sink.warning(
                    "RT-RACE",
                    f"{len(outcome.races)} unrecovered cross-thread "
                    "conflicts recorded", phase="runtime",
                )
        outcome.diagnostics = list(self.sink.diagnostics)
        return outcome

    def _close_session(self) -> None:
        """Tear down the process backend (if armed): flush worker
        wall-clock samples into the tracer's worker timeline, shut the
        pool down, detach the parent memory and unlink the segment."""
        session = self.session
        if session is None:
            return
        if self.tracer:
            for wid, name, t0_ns, t1_ns, meta in session.worker_samples:
                self.tracer.worker_event(
                    name, wid, t0_ns / 1000.0,
                    (t1_ns - t0_ns) / 1000.0, **meta,
                )
            self.tracer.metrics.set("runtime.worker_tasks",
                                    len(session.worker_samples))
            if session.degraded:
                self.tracer.metrics.inc("runtime.mc_degraded")
            # materialize the supervision counters at zero so trace
            # summaries always show the fault-tolerance columns
            metrics = self.tracer.metrics
            for name in ("runtime.mc_restart", "runtime.mc_retry",
                         "runtime.mc_degrade",
                         "runtime.mc_spin_backoffs",
                         "runtime.mc_token_reissues"):
                metrics.set(name, metrics.get(name, 0))
        session.worker_samples = []
        self._release_session()

    def _release_session(self) -> None:
        """Pooled sessions go back to their pool (which evicts them if
        the supervisor degraded or closed them mid-run); owned sessions
        are torn down."""
        session = self.session
        self.session = None
        if session is None:
            return
        if session.pool is not None:
            session.pool.release(session)
        else:
            session.close()


class _QuarantineHost:
    """BaselineRunner facade: lets the SpiceC baseline controller run a
    quarantined loop on the expansion runtime's machine and outcome."""

    def __init__(self, runner: ParallelRunner, access_control):
        self.nthreads = runner.nthreads
        self.checker = runner.checker
        self.outcome = runner.outcome
        self.access_control = access_control


#: sentinel marking a config kwarg the caller did not pass (the
#: deprecation shim needs "explicitly given" to be distinguishable
#: from the default)
_UNSET = object()

#: the run_parallel config kwargs subsumed by :class:`repro.service.Job`
_LEGACY_RUN_KWARGS = ("check_races", "entry", "chunk", "strict",
                      "watchdog", "engine", "backend", "workers")

_LEGACY_WARNING = (
    "passing run configuration kwargs ({names}) to run_parallel() is "
    "deprecated; build a repro.service.Job and pass job=..."
)


def run_parallel(
    tresult: TransformResult,
    nthreads: Optional[int] = None,
    check_races=_UNSET,
    entry=_UNSET,
    raise_on_race: bool = True,
    chunk=_UNSET,
    strict=_UNSET,
    sink: Optional[DiagnosticSink] = None,
    watchdog=_UNSET,
    fault_injectors: Optional[List] = None,
    tracer=None,
    engine=_UNSET,
    backend=_UNSET,
    workers=_UNSET,
    mc: Optional[dict] = None,
    *,
    job=None,
    session=None,
) -> ParallelOutcome:
    """Run a transformed program on ``nthreads`` virtual threads.

    ``job`` (a :class:`repro.service.Job`) is the canonical way to pass
    the run configuration — thread count, chunking, strictness,
    backend, engine, entry point — as one value object; the individual
    config kwargs remain as a deprecated shim for pre-1.5 callers.
    ``session`` injects a pre-built (typically pooled)
    :class:`~repro.runtime.multicore.ProcessSession` so a resident
    service reuses warm forked workers across requests.

    ``chunk`` sets the DOACROSS dynamic-scheduling chunk size (the
    paper uses 1; larger chunks trade scheduling overhead for pipeline
    latency — see the scheduling ablation bench).

    ``strict=False`` arms the robustness layer (checkpoint + sequential
    re-execution on recoverable failures or detected races, quarantine
    fallbacks, sync-token repair); ``watchdog`` bounds every loop
    execution to that many interpreted statements and turns runaway
    loops into a structured :class:`WatchdogTimeout`;
    ``fault_injectors`` wires in :mod:`repro.runtime.faults`
    injectors.

    ``tracer`` (a :class:`repro.obs.Tracer`) records the per-thread
    runtime timeline — iteration spans, DOACROSS token waits/posts,
    watchdog trips, snapshot rollbacks, quarantine fallbacks — with
    simulated-cycle timestamps, and is attached to the outcome as
    ``outcome.trace``.

    ``engine`` picks the interpreter tier (``"ast"`` or
    ``"bytecode"``; defaults to ``$REPRO_ENGINE``).  The bare bytecode
    variant is promoted to instrumented — the runtime needs the race
    checker's observer fan-out and watchdog accounting.

    ``backend="process"`` executes capable parallel loops on real
    worker processes over one OS shared-memory segment (see
    :mod:`repro.runtime.multicore`); ``workers`` sizes the pool
    (default ``nthreads``) and ``mc`` tunes segment/arena sizes and
    timeouts.  Output, diagnostics, modeled cycles and the final heap
    image stay bit-identical to the simulated backend; loops the
    capability audit rejects fall back to the simulated controllers on
    the same shared buffer."""
    given = {name: value for name, value in (
        ("check_races", check_races), ("entry", entry), ("chunk", chunk),
        ("strict", strict), ("watchdog", watchdog), ("engine", engine),
        ("backend", backend), ("workers", workers),
    ) if value is not _UNSET}
    if job is not None:
        if given:
            raise TypeError(
                "run_parallel() got both job= and the legacy kwargs "
                f"{sorted(given)}; the Job already carries them"
            )
        if nthreads is not None:
            raise TypeError(
                "run_parallel() got both job= and nthreads; the Job "
                "already carries the thread count"
            )
        nthreads = job.nthreads
        config = dict(
            check_races=job.check_races, entry=job.options.entry,
            chunk=job.chunk, strict=job.options.strict,
            watchdog=job.watchdog, engine=job.options.engine,
            backend=job.backend, workers=job.workers,
        )
    else:
        if nthreads is None:
            raise TypeError("run_parallel() needs nthreads (or job=)")
        if given:
            import warnings
            warnings.warn(
                _LEGACY_WARNING.format(names=", ".join(sorted(given))),
                DeprecationWarning, stacklevel=2,
            )
        config = dict(
            check_races=True, entry="main", chunk=1, strict=True,
            watchdog=None, engine=None, backend="simulated",
            workers=None,
        )
        config.update(given)
    entry_point = config.pop("entry")
    runner = ParallelRunner(tresult, nthreads, sink=sink,
                            fault_injectors=fault_injectors,
                            tracer=tracer, mc=mc, session=session,
                            **config)
    return runner.run(entry_point, raise_on_race=raise_on_race)
