"""Simulated multithreaded execution of transformed programs.

The paper runs its transformed loops on real cores through GOMP; here N
*virtual threads* execute on the MiniC machine with a cycle-accounting
model:

* **DOALL, static chunking** — the iteration space is split into N
  contiguous chunks; each chunk executes with ``__tid`` bound to its
  thread and cycles charged to that thread's sink.  Chunks run one
  after another in simulation, which is sound *because* expansion makes
  them independent — and that independence is checked, not assumed: a
  byte-level race detector compares every thread's footprint
  (this substitutes for the paper's "correct on real hardware"
  evidence).  Loop makespan = max over threads + fork/join cost.

* **DOACROSS, dynamic chunk=1** — iterations run in program order
  (iteration k on thread k mod N), so semantics are trivially
  preserved; the *timing* is modeled with a pipelining recurrence: the
  statements the pipeline marked as carrying surviving cross-thread
  dependences (``serial_stmt_origins``) form a serialized section that
  iteration k may only enter after iteration k-1 left it.  Stall time
  becomes the thread's ``wait_cycles`` — the paper's
  ``do_wait``/``cpu_relax`` bars in Figure 12.

The whole-program clock advances by each loop's *makespan* rather than
its total work, so end-to-end cycles give the paper's total-program
speedup (Figure 11b) by simple division.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..frontend import ast
from ..interp.machine import (
    BreakSignal, ContinueSignal, CostSink, Machine,
)
from ..interp.trace import RaceChecker
from ..analysis.profiler import find_control_decl
from ..transform.pipeline import (
    DOACROSS, DOALL, TransformResult, TransformedLoop,
)
from ..transform.rewrite import origin_of
from . import sync
from .stats import LoopExecution, ParallelOutcome, ThreadStats


class ParallelError(Exception):
    pass


class RaceError(ParallelError):
    """Cross-thread conflict detected in a supposedly-independent loop."""


def _canonical_bounds(machine: Machine, loop: ast.For):
    """(control decl, lo, hi, step, inclusive) of a canonical for loop."""
    control = find_control_decl(loop)
    if control is None:
        raise ParallelError(
            f"loop {loop.label!r} is not canonical (no induction variable)"
        )
    cond = loop.cond
    if not (isinstance(cond, ast.Binary) and cond.op in ("<", "<=")
            and isinstance(cond.left, ast.Ident)
            and cond.left.decl is control):
        raise ParallelError(
            f"loop {loop.label!r} condition must be 'i < bound' or "
            f"'i <= bound'"
        )
    step_expr = loop.step
    if isinstance(step_expr, ast.Unary) and step_expr.op in ("++", "p++"):
        step = 1
    elif isinstance(step_expr, ast.Assign) and step_expr.op == "+=":
        step = int(machine.eval(step_expr.value))
    else:
        raise ParallelError(
            f"loop {loop.label!r} step must be i++ or i += c"
        )
    addr = machine.var_addr(control)
    lo = int(machine.memory.read_scalar(addr, control.ctype.fmt,
                                        control.ctype.size))
    hi = int(machine.eval(cond.right))
    return control, addr, lo, hi, step, cond.op == "<="


class _BaseController:
    def __init__(self, runner: "ParallelRunner", tloop: TransformedLoop):
        self.runner = runner
        self.tloop = tloop
        self.execution = runner.outcome.loops.setdefault(
            tloop.loop.label, LoopExecution(tloop.loop.label, runner.nthreads)
        )

    def _begin_region(self) -> None:
        if self.runner.checker is not None:
            self.runner.checker.begin_region()

    def _end_region(self) -> None:
        if self.runner.checker is not None:
            self.runner.outcome.races.extend(
                self.runner.checker.end_region()
            )

    def _set_thread(self, machine: Machine, tid: int) -> None:
        machine.tid = tid
        machine.cost = self.execution.threads[tid].sink
        if self.runner.checker is not None:
            self.runner.checker.current_thread = tid

    def _restore(self, machine: Machine, saved: CostSink) -> None:
        machine.tid = 0
        machine.cost = saved
        if self.runner.checker is not None:
            self.runner.checker.current_thread = 0


class _DoallController(_BaseController):
    """Static chunk scheduling over a canonical for loop."""

    def __call__(self, machine: Machine, loop: ast.For) -> None:
        execution = self.execution
        execution.executions += 1
        nthreads = self.runner.nthreads
        if not isinstance(loop, ast.For):
            raise ParallelError(
                f"DOALL loop {loop.label!r} must be a canonical for loop"
            )
        if loop.init is not None:
            machine.exec_stmt(loop.init)
        control, addr, lo, hi, step, inclusive = _canonical_bounds(
            machine, loop
        )
        if inclusive:
            hi += 1
        total = max(0, -(-(hi - lo) // step))
        if self.runner.checker is not None:
            self.runner.checker.exempt |= set(
                range(addr, addr + control.ctype.size)
            )
        saved = machine.cost
        start_cycles = [0.0] * nthreads
        self._begin_region()
        try:
            for tid in range(nthreads):
                chunk_lo = tid * total // nthreads
                chunk_hi = (tid + 1) * total // nthreads
                if chunk_lo >= chunk_hi:
                    continue
                self._set_thread(machine, tid)
                stats = execution.threads[tid]
                stats.sync_cycles += sync.STATIC_CHUNK_SETUP
                start_cycles[tid] = stats.sink.cycles
                machine.memory.write_scalar(
                    addr, control.ctype.fmt, lo + chunk_lo * step
                )
                for _k in range(chunk_lo, chunk_hi):
                    if loop.cond is not None:
                        machine.eval(loop.cond)
                    try:
                        machine.exec_stmt(loop.body)
                    except ContinueSignal:
                        pass
                    except BreakSignal:
                        raise ParallelError(
                            f"break inside DOALL loop {loop.label!r}"
                        )
                    if loop.step is not None:
                        machine.eval(loop.step)
                    stats.iterations += 1
                    execution.iterations += 1
        finally:
            self._end_region()
            self._restore(machine, saved)
        spans = [
            execution.threads[t].sink.cycles - start_cycles[t]
            for t in range(nthreads)
        ]
        makespan = max(spans) if spans else 0.0
        # shared memory system: N threads' combined traffic cannot beat
        # the controller's bandwidth, which caps memory-bound loops
        from ..interp.machine import COSTS
        mem_cycles = sum(
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ) - sum(execution._mem_seen)
        execution._mem_seen = [
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ]
        makespan = max(makespan, sync.bandwidth_makespan(mem_cycles))
        fork = sync.fork_join_cost(nthreads)
        execution.makespan += makespan
        execution.runtime_cycles += fork
        machine.cost.cycles += makespan + fork
        # leave the control variable at its sequential exit value
        machine.memory.write_scalar(addr, control.ctype.fmt, lo + total * step)


class _DoacrossController(_BaseController):
    """Dynamic scheduling (chunk size 1) with pipelined serial sections."""

    def __call__(self, machine: Machine, loop: ast.LoopStmt) -> None:
        execution = self.execution
        execution.executions += 1
        nthreads = self.runner.nthreads
        serial_origins = self.tloop.serial_stmt_origins
        saved = machine.cost

        thread_free = [0.0] * nthreads
        #: per serialized-statement origin: finish time of that statement
        #: in the latest iteration (each carried-dependence chain gets
        #: its own post/wait token, so independent serial sections
        #: pipeline independently — input cursor vs output emit)
        sync_done: Dict[int, float] = {}
        k = 0

        control = None
        addr = None
        if isinstance(loop, ast.For):
            if loop.init is not None:
                machine.exec_stmt(loop.init)
            control = find_control_decl(loop)
            if control is not None and self.runner.checker is not None:
                addr = machine.var_addr(control)
                self.runner.checker.exempt |= set(
                    range(addr, addr + control.ctype.size)
                )

        body = loop.body
        stmts = body.stmts if isinstance(body, ast.Block) else [body]
        self._begin_region()
        try:
            chunk = max(1, self.runner.chunk)
            while True:
                tid = (k // chunk) % nthreads
                self._set_thread(machine, tid)
                stats = execution.threads[tid]
                # evaluate the loop condition as this thread's work
                if isinstance(loop, ast.DoWhile):
                    pass  # condition evaluated after the body
                elif loop.cond is not None:
                    if not machine.eval(loop.cond):
                        break
                stats.sync_cycles += sync.DYNAMIC_DEQUEUE
                segments = self._run_iteration(
                    machine, stmts, serial_origins, stats
                )
                if isinstance(loop, ast.For) and loop.step is not None:
                    machine.eval(loop.step)
                stats.iterations += 1
                execution.iterations += 1
                # pipelining recurrence: walk the iteration's segments
                # on this thread's clock; each serialized statement
                # waits on its own token from the previous iteration
                clock = thread_free[tid] + sync.DYNAMIC_DEQUEUE
                for origin, is_serial, cycles in segments:
                    if is_serial:
                        token = sync_done.get(origin, 0.0)
                        if token > clock:
                            stats.wait_cycles += token - clock
                            clock = token
                        stats.sync_cycles += (
                            sync.POST_COST + sync.WAIT_CHECK_COST
                        )
                        clock += cycles
                        sync_done[origin] = clock
                    else:
                        clock += cycles
                thread_free[tid] = clock
                k += 1
                if isinstance(loop, ast.DoWhile):
                    if not machine.eval(loop.cond):
                        break
        except BreakSignal:
            pass
        finally:
            self._end_region()
            self._restore(machine, saved)
        makespan = max(thread_free) if thread_free else 0.0
        from ..interp.machine import COSTS
        mem_cycles = sum(
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ) - sum(execution._mem_seen)
        execution._mem_seen = [
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ]
        makespan = max(makespan, sync.bandwidth_makespan(mem_cycles))
        fork = sync.fork_join_cost(nthreads)
        execution.makespan += makespan
        execution.runtime_cycles += fork
        machine.cost.cycles += makespan + fork

    def _run_iteration(
        self,
        machine: Machine,
        stmts: List[ast.Stmt],
        serial_origins: Set[int],
        stats: ThreadStats,
    ) -> List[Tuple[int, bool, float]]:
        """Execute one iteration statement-by-statement; returns
        ``(stmt origin, is_serial, cycles)`` segments in order."""
        segments: List[Tuple[int, bool, float]] = []
        checker = self.runner.checker
        try:
            for stmt in stmts:
                origin = origin_of(stmt)
                is_serial = origin in serial_origins
                if is_serial and checker is not None:
                    checker.enabled = False
                before = machine.cost.cycles
                try:
                    machine.exec_stmt(stmt)
                finally:
                    segments.append(
                        (origin, is_serial, machine.cost.cycles - before)
                    )
                    if is_serial and checker is not None:
                        checker.enabled = True
        except ContinueSignal:
            pass
        return segments


class ParallelRunner:
    """Executes a transformed program with N virtual threads."""

    def __init__(
        self,
        tresult: TransformResult,
        nthreads: int,
        check_races: bool = True,
        chunk: int = 1,
    ):
        if tresult.program is None or tresult.sema is None:
            raise ParallelError("transform result has no program")
        self.tresult = tresult
        self.nthreads = nthreads
        self.chunk = chunk
        self.outcome = ParallelOutcome(nthreads)
        self.machine = Machine(tresult.program, tresult.sema)
        self.machine.nthreads = nthreads
        self.checker: Optional[RaceChecker] = None
        if check_races:
            self.checker = RaceChecker()
            self.machine.observers.append(self.checker)
        for tloop in tresult.loops:
            controller = (
                _DoallController(self, tloop) if tloop.kind == DOALL
                else _DoacrossController(self, tloop)
            )
            self.machine.loop_controllers[tloop.loop.nid] = controller

    def run(self, entry: str = "main",
            raise_on_race: bool = True) -> ParallelOutcome:
        outcome = self.outcome
        outcome.exit_code = self.machine.run(entry)
        outcome.output = list(self.machine.output)
        outcome.total_cycles = self.machine.cost.cycles
        outcome.peak_memory = self.machine.memory.peak_footprint()
        if self.checker is not None:
            if outcome.races and raise_on_race:
                sample = outcome.races[:5]
                raise RaceError(
                    f"{len(outcome.races)} cross-thread conflicts detected "
                    f"(first: {sample}); the expansion transform failed to "
                    f"privatize some contended structure"
                )
        return outcome


def run_parallel(
    tresult: TransformResult,
    nthreads: int,
    check_races: bool = True,
    entry: str = "main",
    raise_on_race: bool = True,
    chunk: int = 1,
) -> ParallelOutcome:
    """Run a transformed program on ``nthreads`` virtual threads.

    ``chunk`` sets the DOACROSS dynamic-scheduling chunk size (the
    paper uses 1; larger chunks trade scheduling overhead for pipeline
    latency — see the scheduling ablation bench)."""
    runner = ParallelRunner(tresult, nthreads, check_races=check_races,
                            chunk=chunk)
    return runner.run(entry, raise_on_race=raise_on_race)
