"""Result containers for parallel executions."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..diagnostics import Diagnostic
from ..interp.machine import CostSink


class RecoveryEvent:
    """One permissive-mode recovery: a parallel loop execution hit a
    fault (race, interpreter error, watchdog, injected fault), was
    rolled back to its pre-loop memory state, and re-executed
    sequentially."""

    def __init__(self, label: Optional[str], diagnostic: Diagnostic,
                 races: Optional[List[Tuple[int, str]]] = None):
        self.label = label
        #: the structured cause (what the parallel attempt died of)
        self.diagnostic = diagnostic
        #: conflicts the race checker saw in the aborted attempt
        self.races = list(races or [])

    def __repr__(self) -> str:
        return (
            f"<RecoveryEvent loop={self.label!r} "
            f"cause={self.diagnostic.code}>"
        )


class ThreadStats:
    """Per-virtual-thread accounting for one parallel loop."""

    def __init__(self, tid: int):
        self.tid = tid
        self.sink = CostSink()      # busy work executed by this thread
        self.wait_cycles = 0.0      # stalled on cross-iteration sync
        self.sync_cycles = 0.0      # post/wait + scheduling overhead
        self.iterations = 0

    @property
    def busy_cycles(self) -> float:
        return self.sink.cycles

    def __repr__(self) -> str:
        return (
            f"<Thread {self.tid}: busy={self.busy_cycles:.0f} "
            f"wait={self.wait_cycles:.0f} sync={self.sync_cycles:.0f} "
            f"iters={self.iterations}>"
        )


class LoopExecution:
    """Outcome of running one candidate loop in parallel (may aggregate
    several dynamic executions of the same loop)."""

    def __init__(self, label: Optional[str], nthreads: int):
        self.label = label
        self.nthreads = nthreads
        self.threads: List[ThreadStats] = [
            ThreadStats(t) for t in range(nthreads)
        ]
        self.makespan = 0.0         # modeled parallel wall-cycles
        self.runtime_cycles = 0.0   # fork/join + scheduling library time
        self.executions = 0
        self.iterations = 0
        #: per-thread memory cycles already charged to makespan (the
        #: bandwidth model diffs cumulative counters per execution)
        self._mem_seen: List[float] = [0.0] * nthreads

    def breakdown(self) -> Dict[str, float]:
        """Aggregate cycle breakdown (Figure 12's categories)."""
        work = sum(t.busy_cycles for t in self.threads)
        sync = sum(t.sync_cycles for t in self.threads)
        wait = sum(t.wait_cycles for t in self.threads)
        # threads idle after finishing their chunks also count as wait
        total_slots = self.makespan * self.nthreads
        tail_idle = max(0.0, total_slots - work - sync - wait
                        - self.runtime_cycles)
        return {
            "work": work,
            "sync": sync,
            "wait": wait + tail_idle,
            "runtime": self.runtime_cycles,
        }

    def __repr__(self) -> str:
        return (
            f"<LoopExecution {self.label!r} N={self.nthreads} "
            f"makespan={self.makespan:.0f} iters={self.iterations}>"
        )


class ParallelOutcome:
    """Whole-program result of a simulated parallel run."""

    def __init__(self, nthreads: int):
        self.nthreads = nthreads
        #: which execution backend ran the program ("simulated" or
        #: "process"); set by the runner
        self.backend = "simulated"
        self.loops: Dict[Optional[str], LoopExecution] = {}
        self.output: List[str] = []
        self.total_cycles = 0.0     # program cycles with loops at makespan
        self.peak_memory = 0
        self.races: List[Tuple[int, str]] = []
        self.exit_code = 0
        #: permissive-mode sequential re-executions (empty when strict)
        self.recoveries: List[RecoveryEvent] = []
        #: structured findings from the run (copied from the sink)
        self.diagnostics: List[Diagnostic] = []
        #: the :class:`repro.obs.Tracer` that observed this run (None
        #: when tracing was disabled)
        self.trace = None

    def loop(self, label: Optional[str] = None) -> LoopExecution:
        if label is None and len(self.loops) == 1:
            return next(iter(self.loops.values()))
        return self.loops[label]

    @property
    def loop_makespan(self) -> float:
        """Combined parallel-loop cycles across all candidate loops."""
        return sum(ex.makespan + ex.runtime_cycles
                   for ex in self.loops.values())

    def __repr__(self) -> str:
        return (
            f"<ParallelOutcome N={self.nthreads} "
            f"total={self.total_cycles:.0f} races={len(self.races)}>"
        )
