"""Supervised dispatch for the multi-core backend.

The :class:`Supervisor` replaces ``ProcessSession``'s original
crash-and-abandon dispatch (send everything, then one blocking
``conn.poll(worker_timeout)`` per lane) with an event loop that

* multiplexes all worker pipes through
  :func:`multiprocessing.connection.wait`,
* watches each worker's shared-memory **heartbeat words** (a daemon
  thread in the worker bumps BEAT every ``heartbeat_interval``; a busy
  worker whose beat freezes for ``heartbeat_timeout`` is revoked),
* **respawns** dead workers from the warm parent image (bounded by
  ``max_restarts`` per session, with exponential backoff) and re-runs
  only their in-flight work (bounded by ``retry_budget`` re-dispatches
  per task), and
* walks the **degradation ladder** when budgets run out: respawn →
  reassign to a surviving worker (pool shrink) → simulated fallback,
  each rung emitting structured ``MC-*`` diagnostics and
  ``runtime.mc_*`` metrics.

Retry soundness (DESIGN.md §14):

* A **DOALL chunk** writes only privatized copies, so re-running it is
  idempotent *by construction* — provided the chunk's writes really
  are privatized.  The static verdict comes from
  :func:`repro.runtime.multicore.audit_retry_safety`; the dynamic
  guard is the worker's STATUS word (the *write fence*): a worker that
  died at ``PHASE_BOUND`` never touched program memory and is always
  retryable, one that died at ``PHASE_BODY`` is retryable only when
  the audit passed.
* A **DOACROSS strip** streams: each iteration is committed by one
  pipe write before the lease words (ITER/DIRTY) advance.  Pipe
  buffers survive the writer, so the supervisor drains a dead stage's
  committed iterations post-mortem and restarts the replacement from
  the exact boundary (``resume_from``).  A death observed with DIRTY
  set and no newer committed iteration means serialized shared writes
  may be half-applied — the one case that degrades.
* Dropped sync-token posts ride along in each committed iteration's
  message; the supervisor **re-issues** them into the sync slots
  (``MC-TOKEN-REISSUE``) so a dead stage's successors unblock instead
  of spin-timing out.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict, List, Optional, Tuple

from multiprocessing.connection import wait as _conn_wait

from .multicore import (
    HB_BEAT, HB_DIRTY, HB_ITER, HB_STATUS, MC_DEGRADE, MC_RESTART,
    MC_RETRY, MC_SHRINK, MC_TOKEN_REISSUE, PHASE_BOUND,
    WorkerCrash, _SLOT,
)

__all__ = ["Supervisor"]


class _Lane:
    """One task's dispatch state (lane index == reply index)."""

    __slots__ = ("index", "spec", "wid", "dispatches", "done", "final",
                 "iters", "lines", "deltas", "tail", "total_sink",
                 "wall", "extras", "dispatch_t", "is_retry")

    def __init__(self, index: int, spec: dict):
        self.index = index
        self.spec = spec
        self.wid: Optional[int] = None
        self.dispatches = 0
        self.done = False
        self.final: Optional[tuple] = None
        # doacross accumulation (survives worker deaths)
        self.iters: List[Tuple[int, list, int]] = []
        self.lines: List[str] = []
        self.deltas: List[tuple] = []
        self.tail: Optional[tuple] = None
        self.total_sink: Optional[tuple] = None
        self.wall: Tuple[int, int] = (0, 0)
        self.extras: dict = {}
        self.dispatch_t = 0.0
        self.is_retry = False

    @property
    def tid(self) -> int:
        return self.spec["tid"]


class Supervisor:
    """Runs one batch of tasks (one loop execution) to completion."""

    def __init__(self, session, kind: str, specs: List[dict],
                 retry_safe: bool = False):
        self.session = session
        self.kind = kind
        self.doall = kind == "doall"
        self.retry_safe = retry_safe
        self.lanes = [_Lane(i, spec) for i, spec in enumerate(specs)]
        self.by_tid: Dict[int, _Lane] = {
            lane.tid: lane for lane in self.lanes}
        #: wid -> lanes currently queued/in-flight on that worker
        self.pending: Dict[int, List[_Lane]] = {}
        #: wid -> (last observed beat value, wall time it changed)
        self.beats: Dict[int, Tuple[int, float]] = {}
        #: wid -> wall time of the last message received
        self.last_msg: Dict[int, float] = {}
        self.metrics = session.tracer.metrics

    # -- top level --------------------------------------------------------
    def run(self) -> List[tuple]:
        session = self.session
        self._sweep_dead("died idle between loops")
        live = session.live_wids()
        if not live:
            self._degrade("no live workers and restart budget exhausted")
        for wid in live:
            # workers are idle between batches: clear last batch's
            # STATUS/lease words so an autopsy never reads stale state
            session._hb_zero(wid)
        for i, lane in enumerate(self.lanes):
            self._send(lane, live[i % len(live)])
        poll = max(0.002, min(0.05, session.heartbeat_timeout / 5.0))
        while not all(lane.done for lane in self.lanes):
            self._drain_ready(poll)
            self._check_workers()
        session.lane_wids = [lane.wid if lane.wid is not None else 0
                             for lane in self.lanes]
        return [self._reply(lane) for lane in self.lanes]

    # -- dispatch ---------------------------------------------------------
    def _send(self, lane: _Lane, wid: int) -> None:
        session = self.session
        spec = lane.spec
        if not lane.is_retry:
            # chaos is planned once, at a task's first dispatch: the
            # injected failure must not chase its own retry forever
            directives: dict = {}
            for inj in session.chaos:
                plan = inj.plan(self.kind, session.task_seq, wid, lane,
                                spec)
                if plan:
                    directives.update(plan)
            session.task_seq += 1
            if directives:
                spec = dict(spec)
                kill_now = directives.pop("kill_at_dispatch", False)
                if directives:
                    spec["chaos"] = directives
                lane.spec = spec
                if kill_now:
                    # boundary kill: down before the task even lands,
                    # so the retry re-runs it whole from iteration 0
                    self._kill_worker(wid)
        elif lane.iters and not self.doall:
            spec = dict(spec, resume_from=len(lane.iters))
            spec.pop("chaos", None)
            lane.spec = spec
        elif lane.is_retry:
            spec = dict(spec)
            spec.pop("chaos", None)
            lane.spec = spec
        lane.wid = wid
        lane.dispatches += 1
        lane.dispatch_t = time.monotonic()
        self.pending.setdefault(wid, []).append(lane)
        conn = session._conns[wid]
        try:
            conn.send((self.kind, spec))
        except (OSError, BrokenPipeError):
            pass  # the liveness check picks the death up next tick

    def _kill_worker(self, wid: int) -> None:
        proc = self.session._procs[wid]
        if proc is not None and proc.pid is not None:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass

    # -- reply draining ---------------------------------------------------
    def _drain_ready(self, poll: float) -> None:
        session = self.session
        conns = {id(session._conns[wid]): wid
                 for wid in self.pending
                 if self.pending[wid] and session._conns[wid] is not None}
        if not conns:
            time.sleep(poll)
            return
        ready = _conn_wait([session._conns[wid]
                            for wid in conns.values()], timeout=poll)
        for conn in ready:
            self._drain_conn(conns[id(conn)], conn)

    def _drain_conn(self, wid: int, conn) -> None:
        while True:
            try:
                if not conn.poll(0):
                    return
                msg = conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                return  # the liveness check handles the corpse
            self.last_msg[wid] = time.monotonic()
            self._handle(wid, msg)

    def _handle(self, wid: int, msg: tuple) -> None:
        lane = self.by_tid.get(msg[1])
        if lane is None:
            return
        if msg[0] == "it":
            _it, _tid, k, segments, lines, delta, dropped = msg
            lane.iters.append((k, segments, len(lines)))
            lane.lines.extend(lines)
            lane.deltas.append(tuple(delta))
            if dropped:
                self._reissue_tokens(lane, dropped)
            return
        # final replies
        if msg[0] == "ok":
            if self.doall:
                lane.final = msg[:6]
                extras = msg[6] if len(msg) > 6 else {}
            else:
                _ok, _tid, wall, tail, total, extras = msg
                lane.wall = wall
                lane.tail = tuple(tail)
                lane.total_sink = tuple(total)
            backoffs = extras.get("backoffs", 0) if extras else 0
            if backoffs:
                self.metrics.inc("runtime.mc_spin_backoffs", backoffs)
            if extras:
                # native-tier dispatch accounting: the smoke gates
                # assert zero fallbacks on the kernel suite, so a chunk
                # that ran the Python loop is never silent
                if extras.get("native"):
                    self.metrics.inc("runtime.native_chunks")
                nl = extras.get("nl")
                if nl:
                    self.metrics.inc("runtime.native_fallbacks")
                    self._note(
                        "NL-FALLBACK",
                        f"task {lane.tid} ran on the Python chunk loop "
                        f"instead of the native entry point ({nl})")
            lane.extras = extras or {}
        else:
            # strip the routing tid: controllers expect the legacy
            # ("err", code, msg) shape
            lane.final = ("err", msg[2], msg[3])
        lane.done = True
        pending = self.pending.get(wid)
        if pending and lane in pending:
            pending.remove(lane)

    def _reissue_tokens(self, lane: _Lane,
                        dropped: List[Tuple[int, int]]) -> None:
        """Repair sync tokens a (chaos-dropped or dead-stage) post never
        wrote.  ``max(cur, k + 1)`` is race-free: the only other writer
        of this slot is iteration k+1's owner, which is by definition
        still spinning on the very token being repaired."""
        session = self.session
        data = session.memory.data
        for origin, k in dropped:
            addr = session._origin_slots.get(origin)
            if addr is None:
                continue
            cur = _SLOT.unpack_from(data, addr)[0]
            if cur < k + 1:
                _SLOT.pack_into(data, addr, k + 1)
            self.metrics.inc("runtime.mc_token_reissues")
            self._note(MC_TOKEN_REISSUE,
                       f"re-issued sync token (origin {origin}, "
                       f"iteration {k}) for stage {lane.tid}")

    # -- liveness ---------------------------------------------------------
    def _check_workers(self) -> None:
        session = self.session
        now = time.monotonic()
        for wid in list(self.pending):
            lanes = self.pending[wid]
            if not lanes:
                continue
            proc = session._procs[wid]
            if proc is None or not proc.is_alive():
                self._revoke(wid, "worker process died")
                continue
            beat = session.hb_read(wid, HB_BEAT)
            seen, since = self.beats.get(wid, (None, now))
            if beat != seen:
                self.beats[wid] = (beat, now)
            elif now - since > session.heartbeat_timeout:
                self._revoke(wid, "heartbeat stalled")
                continue
            busy_since = min(lane.dispatch_t for lane in lanes)
            quiet = now - max(busy_since, self.last_msg.get(wid, 0.0))
            if quiet > session.worker_timeout:
                self._revoke(wid, "reply timeout")

    def _sweep_dead(self, reason: str) -> None:
        """Respawn workers found dead *between* loop executions (they
        have no in-flight work, so this is pure pool repair)."""
        session = self.session
        for wid in session.live_wids():
            proc = session._procs[wid]
            if proc.is_alive():
                continue
            if session.restarts_used >= session.max_restarts:
                session.retire_worker(wid)
                continue
            self._respawn(wid, proc.exitcode, reason)

    # -- the ladder -------------------------------------------------------
    def _revoke(self, wid: int, reason: str) -> None:
        """A worker lost its lease: kill it, autopsy the heartbeat
        words + drainable pipe, then retry / shrink / degrade."""
        session = self.session
        proc = session._procs[wid]
        conn = session._conns[wid]
        self._kill_worker(wid)
        if proc is not None:
            proc.join(timeout=2.0)
        exitcode = proc.exitcode if proc is not None else None
        if conn is not None:
            self._drain_conn(wid, conn)  # committed iterations survive
            try:
                conn.close()
            except Exception:
                pass
        status = session.hb_read(wid, HB_STATUS)
        in_flight_tid = (status >> 3) - 1
        phase = status & 7
        it_done = session.hb_read(wid, HB_ITER)
        dirty = session.hb_read(wid, HB_DIRTY)
        lanes = self.pending.pop(wid, [])
        session._procs[wid] = None
        session._conns[wid] = None
        self.beats.pop(wid, None)
        crash = (f"worker {wid} died mid-task "
                 f"(exitcode={exitcode}, {reason})")
        retry: List[_Lane] = []
        for lane in lanes:
            if lane.done:
                continue
            verdict = self._autopsy(lane, in_flight_tid, phase, it_done,
                                    dirty)
            if verdict is not None:
                self._degrade(f"{crash}; {verdict}")
            if lane.dispatches >= 1 + session.retry_budget:
                self._degrade(
                    f"{crash}; retry budget exhausted for task "
                    f"{lane.tid} ({lane.dispatches} dispatches)")
            lane.is_retry = True
            retry.append(lane)
        if session.restarts_used < session.max_restarts:
            self._respawn(wid, exitcode, reason)
            target = wid
        else:
            target = self._shrink_target(wid, crash)
        for lane in retry:
            self.metrics.inc("runtime.mc_retry")
            self._note(MC_RETRY,
                       f"re-dispatching task {lane.tid} of worker {wid} "
                       f"to worker {target} (attempt "
                       f"{lane.dispatches + 1})")
            t0 = time.perf_counter_ns()
            session.worker_samples.append(
                (target, "mc-retry", t0, t0,
                 {"tid": lane.tid, "attempt": lane.dispatches + 1,
                  "reason": reason}))
            self._send(lane, target)

    def _autopsy(self, lane: _Lane, in_flight_tid: int, phase: int,
                 it_done: int, dirty: int) -> Optional[str]:
        """None = retryable; otherwise the reason this death is not."""
        if lane.tid != in_flight_tid or phase <= PHASE_BOUND:
            # queued behind the fatal task, or died before its write
            # fence opened: program memory untouched by this lane
            return None
        if self.doall:
            if self.retry_safe:
                return None
            return (f"task {lane.tid} died past its write fence and "
                    f"the loop is not retry-safe")
        # doacross lease: committed iterations were drained from the
        # pipe; the lease words say whether the tail is clean
        drained = len(lane.iters)
        if not dirty or drained == it_done + 1:
            return None
        if drained == it_done:
            return (f"stage {lane.tid} died mid-iteration "
                    f"{drained} (serialized writes may be torn)")
        return (f"stage {lane.tid} lease words inconsistent "
                f"(drained={drained}, iter={it_done})")

    def _respawn(self, wid: int, exitcode, reason: str) -> None:
        session = self.session
        delay = 0.01 * (2 ** session.restarts_used)
        time.sleep(min(delay, 0.25))
        t0 = time.perf_counter_ns()
        session.respawn_worker(wid)
        t1 = time.perf_counter_ns()
        self.metrics.inc("runtime.mc_restart")
        self._note(MC_RESTART,
                   f"worker {wid} (exitcode={exitcode}, {reason}) "
                   f"respawned from the warm image "
                   f"({session.restarts_used}/{session.max_restarts} "
                   f"restarts used)")
        session.worker_samples.append(
            (wid, "mc-respawn", t0, t1,
             {"exitcode": exitcode, "reason": reason,
              "restarts_used": session.restarts_used}))

    def _shrink_target(self, wid: int, crash: str) -> int:
        """Restart budget gone: fold the dead worker's lanes onto a
        survivor.  DOACROSS cannot shrink — stages deadlock when two
        share one FIFO worker — so it degrades instead."""
        session = self.session
        live = session.live_wids()
        if not live or not self.doall:
            why = "no live workers left" if not live else \
                "DOACROSS stages cannot share a worker"
            self._degrade(f"{crash}; restart budget exhausted and {why}")
        target = min(live, key=lambda w: len(self.pending.get(w, [])))
        self.metrics.inc("runtime.mc_degrade")
        self._warn(MC_SHRINK,
                   f"restart budget exhausted; pool shrank to "
                   f"{len(live)} worker(s), reassigning worker {wid}'s "
                   f"tasks to worker {target}")
        return target

    def _degrade(self, msg: str) -> None:
        self.metrics.inc("runtime.mc_degrade")
        self._warn(MC_DEGRADE,
                   f"process backend degraded to simulated controllers: "
                   f"{msg}")
        t0 = time.perf_counter_ns()
        self.session.worker_samples.append(
            (0, "mc-degrade", t0, t0, {"reason": msg}))
        self.session.degrade(msg)
        raise WorkerCrash(msg)

    # -- diagnostics ------------------------------------------------------
    def _note(self, code: str, msg: str) -> None:
        sink = self.session.sink
        if sink is not None:
            sink.note(code, msg, phase="runtime")

    def _warn(self, code: str, msg: str) -> None:
        sink = self.session.sink
        if sink is not None:
            sink.warning(code, msg, phase="runtime")

    # -- reply assembly ---------------------------------------------------
    def _reply(self, lane: _Lane) -> tuple:
        if lane.final is not None:       # doall ok, or any err
            return lane.final
        # doacross: reassemble the legacy reply shape.  A strip that
        # ran in one attempt uses the worker's own totals verbatim; a
        # resumed strip folds the per-iteration deltas (exact: modeled
        # costs are integer-valued) plus the final-cond tail
        if lane.extras.get("resumed"):
            sink4 = [0.0, 0.0, 0.0, 0.0]
            for delta in lane.deltas:
                for i in range(4):
                    sink4[i] += delta[i]
            if lane.tail is not None:
                for i in range(4):
                    sink4[i] += lane.tail[i]
            payload = tuple(sink4)
        else:
            payload = lane.total_sink or (0.0, 0.0, 0.0, 0.0)
        return ("ok", lane.tid, lane.lines, payload, lane.iters,
                lane.wall)
