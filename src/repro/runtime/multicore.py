"""True multi-core execution backend over OS shared memory.

The simulated runtime (:mod:`repro.runtime.parallel`) executes chunks
one after another on virtual threads; this module executes them *at
the same time* on real worker processes.  The entire expanded heap
lives in one ``multiprocessing.shared_memory`` segment, so a
redirected access from any worker hits the same bytes the parent (and
every other worker) sees — exactly the property the paper's expansion
transform establishes: after expansion, per-thread copies are disjoint
spans of one shared structure, so threads need no further isolation.

Segment layout (addresses are plain ints into one flat mapping)::

    0                parent_limit   sync_base      arena 0     arena W-1
    |  parent region |  sync slots  |  worker 0  | ... |  worker W-1  |
    |  globals+heap  |  8B counters |  stack     |     |  stack       |

* **parent region** — the program's ordinary address space.  The
  parent machine allocates globals, rodata and heap here; bonded
  layout makes this trivial: copy 0 *is* the shared copy, so worker
  reads/writes of expanded structures land in this region unchanged.
* **sync slots** — one 8-byte little-endian counter per serialized
  statement origin (DOACROSS post/wait).  Slot value ``k`` means
  iterations ``0..k-1`` have left that serialized section.
* **worker arenas** — fixed-size private spans, one per worker, for
  call-stack allocations made *inside* a chunk (locals of callees,
  VLA copies).  Reset between tasks; never aliased by the parent.

Workers are forked lazily on first dispatch and reused (warm pool)
across loops and executions.  A task message carries only scalars:
loop label, tid, chunk bounds, and nid→address maps for the frame in
scope — no pickled program state.  The worker resolves the loop from
the fork-inherited AST and executes it on a ``bytecode-bare`` machine
whose compiled code is memoized by *source hash*
(:func:`repro.interp.bytecode.compiler.compiler_for_hash`), so every
task on a warm worker reuses the lowered closures.

Process-capability is audited per loop (``MC-*`` reason codes below);
loops that cannot run safely on workers — e.g. they allocate heap, so
address assignment would race — fall back to the simulated controller
on the same shared buffer, which is bit-identical by construction.

Memory model note: token posts rely on x86-TSO store ordering plus
CPython's per-process GIL — all data stores of a serialized section
precede the counter store in program order, and an 8-byte aligned
store is not torn.  See DESIGN.md §13.
"""

from __future__ import annotations

import multiprocessing
import os
import struct
import time
from typing import Dict, List, Optional, Set, Tuple

from ..frontend import ast, print_program
from ..interp import memory as mem
from ..interp.machine import (
    BreakSignal, ContinueSignal, CostSink, Frame, Machine,
)
from ..analysis.profiler import find_control_decl
from ..transform.rewrite import origin_of
from . import sync
from .parallel import (
    ParallelError, _DoacrossController, _DoallController, _canonical_bounds,
)

# ---------------------------------------------------------------------------
# audit reason codes (why a loop fell back to the simulated controller)
# ---------------------------------------------------------------------------

MC_ALLOC = "MC-ALLOC"              # heap alloc/free inside the loop
MC_NONCANONICAL = "MC-NONCANONICAL"  # not a canonical bounded for loop
MC_BOUND = "MC-BOUND"              # DOACROSS bound not provably stable
MC_CONTROL = "MC-CONTROL"          # induction variable assigned in body
MC_WORKERS = "MC-WORKERS"          # DOACROSS needs workers >= nthreads
MC_BREAK = "MC-BREAK"              # DOACROSS loop may break early
MC_RETURN = "MC-RETURN"            # return escapes the loop body
MC_CHUNK = "MC-CHUNK"              # DOACROSS process path needs chunk==1
MC_STRLIT = "MC-STRLIT"            # un-interned string literal in loop
MC_INDIRECT = "MC-INDIRECT"        # indirect call — callees unknown
MC_NESTED = "MC-NESTED"            # nested controlled loop in subtree
MC_INSTRUMENTED = "MC-INSTRUMENTED"  # fault injectors / watchdog active
MC_UNAVAILABLE = "MC-UNAVAILABLE"  # no fork / no shared memory on host
MC_DEGRADED = "MC-DEGRADED"        # pool lost earlier (worker crash)

_ALLOC_BUILTINS = frozenset(("malloc", "calloc", "realloc", "free"))

#: sync-slot codec: one 8-byte little-endian counter per serialized
#: statement origin
_SLOT = struct.Struct("<q")
_SLOT_BYTES = 8

#: segment sizing defaults (overridable via the ``mc`` options dict)
DEFAULT_SEGMENT_BYTES = 1 << 23    # parent region: globals + heap
DEFAULT_ARENA_BYTES = 1 << 21      # per-worker call-stack arena
DEFAULT_SYNC_SLOTS = 512
DEFAULT_WORKER_TIMEOUT = 120.0     # parent-side wait per task reply (s)
DEFAULT_SPIN_TIMEOUT = 30.0        # worker-side wait per sync token (s)


class WorkerCrash(ParallelError):
    """A worker process died mid-task (signal, hard exit, timeout)."""

    default_code = "RT-WORKER-CRASH"


# ---------------------------------------------------------------------------
# availability probe
# ---------------------------------------------------------------------------

_AVAILABLE: Optional[Tuple[bool, str]] = None


def process_backend_available(recheck: bool = False) -> Tuple[bool, str]:
    """Whether this host can run the process backend: a ``fork`` start
    method (workers inherit the AST instead of pickling it) and a
    working POSIX shared-memory mount (``/dev/shm`` on Linux).  The
    probe result is cached; ``recheck=True`` re-probes."""
    global _AVAILABLE
    if _AVAILABLE is not None and not recheck:
        return _AVAILABLE
    if "fork" not in multiprocessing.get_all_start_methods():
        _AVAILABLE = (False, "no fork start method on this platform")
        return _AVAILABLE
    try:
        from multiprocessing import shared_memory
        probe = shared_memory.SharedMemory(create=True, size=16)
        probe.buf[0] = 1
        probe.close()
        probe.unlink()
    except Exception as exc:  # pragma: no cover - host-dependent
        _AVAILABLE = (False, f"shared memory unavailable: {exc}")
        return _AVAILABLE
    _AVAILABLE = (True, "")
    return _AVAILABLE


# ---------------------------------------------------------------------------
# per-loop process-capability audit
# ---------------------------------------------------------------------------

class LoopAudit:
    """Static process-capability verdict for one transformed loop."""

    def __init__(self, reasons: List[str], strlits: Set[int]):
        self.reasons = reasons
        #: StrLit nids the loop may evaluate; they must be interned
        #: (parent-side RODATA) before dispatch, else MC-STRLIT
        self.strlits = strlits

    @property
    def ok(self) -> bool:
        return not self.reasons


def _walk_subtree(loop: ast.LoopStmt, sema) -> Tuple[
        List[ast.Node], List[str]]:
    """All nodes reachable from the loop: its own subtree plus the
    bodies of every transitively called function.  Returns the node
    list and any reasons discovered during the walk."""
    reasons: List[str] = []
    nodes: List[ast.Node] = []
    seen_fns: Set[int] = set()
    functions = getattr(sema, "functions", {}) or {}
    pending = [loop]
    while pending:
        root = pending.pop()
        for node in root.walk():
            nodes.append(node)
            if isinstance(node, ast.Call):
                name = node.callee_name
                if name is None:
                    if MC_INDIRECT not in reasons:
                        reasons.append(MC_INDIRECT)
                    continue
                if name in _ALLOC_BUILTINS and MC_ALLOC not in reasons:
                    reasons.append(MC_ALLOC)
                fn = functions.get(name)
                if fn is not None and fn.nid not in seen_fns:
                    seen_fns.add(fn.nid)
                    pending.append(fn.body)
    return nodes, reasons


def _assigned_decls(nodes: List[ast.Node]) -> Set[int]:
    """nids of VarDecls written anywhere in the node set."""
    written: Set[int] = set()
    for node in nodes:
        if isinstance(node, ast.Assign) and isinstance(node.target,
                                                       ast.Ident):
            decl = node.target.decl
            if decl is not None:
                written.add(decl.nid)
        elif isinstance(node, ast.Unary) and node.op in (
                "++", "--", "p++", "p--"):
            operand = getattr(node, "operand", None)
            if isinstance(operand, ast.Ident) and operand.decl is not None:
                written.add(operand.decl.nid)
    return written


def _has_toplevel_break(body: ast.Stmt) -> bool:
    """Whether a ``break`` in ``body`` targets the *enclosing* loop
    (breaks bound to loops nested inside ``body`` do not count)."""
    breaks = {id(n) for n in body.walk() if isinstance(n, ast.Break)}
    if not breaks:
        return False
    for node in body.walk():
        if isinstance(node, ast.LoopStmt):
            for inner in node.body.walk():
                if isinstance(inner, ast.Break):
                    breaks.discard(id(inner))
    return bool(breaks)


def audit_loop(loop: ast.LoopStmt, sema, kind_doall: bool,
               nthreads: int, workers: int, chunk: int,
               controlled_nids: Set[int]) -> LoopAudit:
    """Decide whether ``loop`` may execute on worker processes.

    The audit is conservative: any construct whose cross-process
    semantics differ from the simulated interleaving — heap allocation
    (the bump allocator's address assignment is parent state), nested
    controlled loops (their controllers live on the parent machine),
    unstable DOACROSS trip counts — routes the loop to the simulated
    controller instead.  Falling back is always correct: the simulated
    controller runs on the same shared buffer.
    """
    nodes, reasons = _walk_subtree(loop, sema)
    strlits = {n.nid for n in nodes if isinstance(n, ast.StrLit)}
    for node in nodes:
        if node is not loop and isinstance(node, ast.LoopStmt) \
                and node.nid in controlled_nids:
            reasons.append(MC_NESTED)
            break
    if any(isinstance(n, ast.Return) for n in loop.body.walk()):
        # a return escaping the loop exits the enclosing function on
        # the simulated path; workers cannot replicate that
        reasons.append(MC_RETURN)

    if not isinstance(loop, ast.For):
        reasons.append(MC_NONCANONICAL)
        return LoopAudit(reasons, strlits)
    control = find_control_decl(loop)
    cond = loop.cond
    canonical = (
        control is not None
        and isinstance(cond, ast.Binary) and cond.op in ("<", "<=")
        and isinstance(cond.left, ast.Ident) and cond.left.decl is control
        and (
            (isinstance(loop.step, ast.Unary)
             and loop.step.op in ("++", "p++"))
            or (isinstance(loop.step, ast.Assign) and loop.step.op == "+="
                and isinstance(loop.step.value, ast.IntLit))
        )
    )
    if not canonical:
        reasons.append(MC_NONCANONICAL)
        return LoopAudit(reasons, strlits)

    # the trip count is precomputed parent-side, so writes to the
    # induction variable inside the body would desynchronize chunks.
    # The loop's own init/step subtrees are the canonical writes —
    # exclude them before scanning for rogue assignments.
    canonical_writers: Set[int] = set()
    for part in (loop.init, loop.step):
        if part is not None:
            canonical_writers |= {id(n) for n in part.walk()}
    written = _assigned_decls(
        [n for n in nodes if id(n) not in canonical_writers]
    )
    if control.nid in written:
        reasons.append(MC_CONTROL)

    if not kind_doall:
        if _has_toplevel_break(loop.body):
            # the simulated DOACROSS path honors an early break; a
            # pre-planned concurrent strip cannot
            reasons.append(MC_BREAK)
        # DOACROSS: the iteration->thread mapping and the final failing
        # condition evaluation are fixed at dispatch, so the bound must
        # be provably stable and every strip must run concurrently
        if chunk != 1:
            reasons.append(MC_CHUNK)
        if workers < nthreads:
            reasons.append(MC_WORKERS)
        bound = cond.right
        if isinstance(bound, ast.IntLit):
            pass
        elif isinstance(bound, ast.Ident) and bound.decl is not None:
            if bound.decl.nid in written:
                reasons.append(MC_BOUND)
        else:
            reasons.append(MC_BOUND)
    return LoopAudit(reasons, strlits)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _decl_index(program: ast.Program, sema) -> Dict[int, ast.VarDecl]:
    """nid -> VarDecl for every declaration a task map may reference."""
    index: Dict[int, ast.VarDecl] = {}
    for decl in getattr(sema, "globals", ()) or ():
        index[decl.nid] = decl
    for fn in program.functions():
        for param in fn.params:
            index[param.nid] = param
        for node in fn.body.walk():
            if isinstance(node, ast.VarDecl):
                index[node.nid] = node
    tc = getattr(sema, "thread_context", None) or {}
    for decl in tc.values():
        if decl is not None:
            index[decl.nid] = decl
    return index


def _spin_wait(data, slot_addr: int, want: int, timeout_s: float,
               unpack=_SLOT.unpack_from) -> None:
    """Busy-wait (with escalating sleeps) until the counter at
    ``slot_addr`` reaches ``want``."""
    if unpack(data, slot_addr)[0] >= want:
        return
    spins = 0
    deadline = time.monotonic() + timeout_s
    while unpack(data, slot_addr)[0] < want:
        spins += 1
        if spins < 200:
            continue
        time.sleep(0.00005)
        if time.monotonic() > deadline:
            raise _SpinTimeout(slot_addr, want)


class _SpinTimeout(Exception):
    def __init__(self, slot_addr: int, want: int):
        super().__init__(f"sync slot @{slot_addr} never reached {want}")
        self.slot_addr = slot_addr
        self.want = want


def _worker_main(conn, wid: int, shm, program, sema, fingerprint: str,
                 arena_base: int, arena_limit: int) -> None:
    """Worker process entry point.  Serves task messages until an
    ``("exit",)`` sentinel or pipe EOF, then hard-exits — ``os._exit``
    skips the multiprocessing atexit machinery, so the fork-inherited
    segment registration is torn down exactly once, by the parent."""
    status = 0
    try:
        from ..interp.bytecode.compiler import BARE, compiler_for_hash
        # bare-variant code memoized on the source hash: the machine's
        # own compiler_for() call resolves to this same object, and a
        # warm worker reuses it for every task of the program
        compiler_for_hash(fingerprint, program, sema, BARE)
        memory = mem.Memory(check_bounds=False, buffer=shm.buf,
                            base=arena_base, limit=arena_limit)
        machine = Machine(program, sema, check_bounds=False,
                          engine="bytecode-bare", memory=memory)
        decls = _decl_index(program, sema)
        loops: Dict[str, ast.LoopStmt] = {}
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "exit":
                break
            spec = msg[1]
            crash = os.environ.get("REPRO_MC_CRASH")
            if crash is not None and crash == str(spec.get("tid")):
                os._exit(42)
            try:
                loop = loops.get(spec["label"])
                if loop is None:
                    loop = loops[spec["label"]] = ast.find_loop(
                        program, spec["label"])
                if msg[0] == "doall":
                    reply = _task_doall(machine, memory, decls, loop,
                                        arena_base, spec)
                else:
                    reply = _task_doacross(machine, memory, decls, loop,
                                           arena_base, spec)
            except _SpinTimeout as exc:
                reply = ("err", "RT-SYNC-TIMEOUT", str(exc))
            except BaseException as exc:
                reply = ("err", type(exc).__name__, str(exc)[:500])
            conn.send(reply)
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    except BaseException:
        status = 70
    finally:
        try:
            conn.close()
        except Exception:
            pass
    os._exit(status)


def _bind_task(machine: Machine, memory: mem.Memory,
               decls: Dict[int, ast.VarDecl], arena_base: int,
               spec: dict) -> Tuple[int, str]:
    """Reset the worker for one task: fresh arena, fresh cost sink,
    frame/global bindings rebuilt from the nid->address maps, and the
    induction variable rebound to an arena-private slot.  Returns the
    private control address and its codec format."""
    memory.reset_region(arena_base)
    machine.output = []
    machine.cost = CostSink()
    machine._steps = 0
    machine.tid = spec["tid"]
    machine.nthreads = spec["nthreads"]
    machine._strlit_cache = dict(spec["strlits"])
    machine._globals_ready = True
    machine.globals_frame.vars = {
        decls[nid]: addr for nid, addr in spec["globals"]
    }
    frame = Frame(None)
    frame.vars = {decls[nid]: addr for nid, addr in spec["frame"]}
    machine.frames = [frame]
    control = decls[spec["control_nid"]]
    caddr = memory.alloc(control.ctype.size, mem.STACK, label=control.name)
    frame.vars[control] = caddr
    return caddr, control.ctype.fmt


def _task_doall(machine, memory, decls, loop, arena_base, spec):
    """One DOALL chunk: iterations [chunk_lo, chunk_hi) with the
    private induction variable pre-seeded, mirroring the simulated
    controller's per-chunk execution exactly (uncosted control seed;
    per-iteration cond / body / step)."""
    caddr, fmt = _bind_task(machine, memory, decls, arena_base, spec)
    lo, step = spec["lo"], spec["step"]
    sink = machine.cost
    iters = 0
    t_start = time.perf_counter_ns()
    memory.write_scalar(caddr, fmt, lo + spec["chunk_lo"] * step)
    for _k in range(spec["chunk_lo"], spec["chunk_hi"]):
        if loop.cond is not None:
            machine.eval(loop.cond)
        try:
            machine.exec_stmt(loop.body)
        except ContinueSignal:
            pass
        except BreakSignal:
            return ("err", "RT-BREAK",
                    f"break inside DOALL loop {spec['label']!r}")
        if loop.step is not None:
            machine.eval(loop.step)
        iters += 1
    t_end = time.perf_counter_ns()
    return ("ok", spec["tid"], machine.output,
            (sink.cycles, sink.instructions, sink.loads, sink.stores),
            iters, (t_start, t_end))


def _task_doacross(machine, memory, decls, loop, arena_base, spec):
    """One DOACROSS strip: iterations tid, tid+N, ... of a chunk-1
    dynamic schedule.  Serialized statements wait on / post to 8-byte
    counters in the segment's sync region; the worker reports one
    ``(origin, is_serial, cycles)`` segment list per iteration so the
    parent can replay the simulated pipelining recurrence verbatim."""
    caddr, fmt = _bind_task(machine, memory, decls, arena_base, spec)
    lo, step = spec["lo"], spec["step"]
    total, nthreads, tid = spec["total"], spec["nthreads"], spec["tid"]
    slots: Dict[int, int] = dict(spec["slots"])
    serial = set(slots)
    timeout = spec["spin_timeout"]
    stmts = loop.body.stmts if isinstance(loop.body, ast.Block) \
        else [loop.body]
    data = memory.data
    sink = machine.cost
    output = machine.output
    iters = []   # (k, [(origin, is_serial, cycles)], n_output_lines)
    t_start = time.perf_counter_ns()
    for k in range(tid, total, nthreads):
        memory.write_scalar(caddr, fmt, lo + k * step)
        if loop.cond is not None:
            machine.eval(loop.cond)
        segments: List[Tuple[int, bool, float]] = []
        posted: Set[int] = set()
        n0 = len(output)
        broke = False
        try:
            for stmt in stmts:
                origin = origin_of(stmt)
                is_serial = origin in serial
                if is_serial:
                    _spin_wait(data, slots[origin], k, timeout)
                before = sink.cycles
                try:
                    machine.exec_stmt(stmt)
                finally:
                    segments.append(
                        (origin, is_serial, sink.cycles - before))
                    if is_serial:
                        posted.add(origin)
                        _SLOT.pack_into(data, slots[origin], k + 1)
        except ContinueSignal:
            pass
        except BreakSignal:
            broke = True
        # tokens for serialized statements this iteration skipped
        # (continue / break / short bodies): post them once the
        # iteration is over, in statement order, so later iterations
        # never deadlock waiting on work that will not happen
        for stmt in stmts:
            origin = origin_of(stmt)
            if origin in serial and origin not in posted:
                _spin_wait(data, slots[origin], k, timeout)
                _SLOT.pack_into(data, slots[origin], k + 1)
        if broke:
            return ("err", "RT-BREAK",
                    f"break inside DOACROSS loop {spec['label']!r}")
        if loop.step is not None:
            machine.eval(loop.step)
        iters.append((k, segments, len(output) - n0))
    if spec["final_cond_tid"] == tid and loop.cond is not None:
        # the failing condition evaluation is this thread's work, just
        # as in the simulated dynamic schedule
        memory.write_scalar(caddr, fmt, lo + total * step)
        machine.eval(loop.cond)
    t_end = time.perf_counter_ns()
    return ("ok", tid, output,
            (sink.cycles, sink.instructions, sink.loads, sink.stores),
            iters, (t_start, t_end))


# ---------------------------------------------------------------------------
# parent side: segment + pool session
# ---------------------------------------------------------------------------

class ProcessSession:
    """Owns the shared segment and the (lazily forked) worker pool for
    one :class:`~repro.runtime.parallel.ParallelRunner`."""

    def __init__(self, program: ast.Program, sema, nthreads: int,
                 workers: Optional[int] = None,
                 options: Optional[dict] = None):
        from multiprocessing import shared_memory
        opts = dict(options or {})
        self.nthreads = nthreads
        self.workers = max(1, int(workers or nthreads))
        self.program = program
        self.sema = sema
        self.parent_limit = int(opts.get("segment_bytes",
                                         DEFAULT_SEGMENT_BYTES))
        self.arena_bytes = int(opts.get("arena_bytes",
                                        DEFAULT_ARENA_BYTES))
        self.sync_slots = int(opts.get("sync_slots", DEFAULT_SYNC_SLOTS))
        self.worker_timeout = float(opts.get("worker_timeout",
                                             DEFAULT_WORKER_TIMEOUT))
        self.spin_timeout = float(opts.get("spin_timeout",
                                           DEFAULT_SPIN_TIMEOUT))
        self.sync_base = self.parent_limit
        self.arena_base = self.sync_base + self.sync_slots * _SLOT_BYTES
        total = self.arena_base + self.workers * self.arena_bytes
        self.shm = shared_memory.SharedMemory(create=True, size=total)
        #: the parent machine's memory, handed to ParallelRunner
        self.memory = mem.Memory(buffer=self.shm.buf,
                                 limit=self.parent_limit)
        self.fingerprint = _fingerprint_for(program)
        self._ctx = multiprocessing.get_context("fork")
        self._procs: List = []
        self._conns: List = []
        self._origin_slots: Dict[int, int] = {}
        self.degraded = False
        self.degrade_reason = ""
        self.closed = False
        #: (wid, name, t_start_ns, t_end_ns, meta) wall-clock samples
        #: collected from task replies, merged into the trace export
        self.worker_samples: List[Tuple[int, str, int, int, dict]] = []

    # -- pool lifecycle ---------------------------------------------------
    @property
    def forked(self) -> bool:
        return bool(self._procs)

    def ensure_pool(self) -> None:
        if self._procs or self.degraded or self.closed:
            return
        # pre-compile the bare variant before forking: children inherit
        # the lowered closures copy-on-write instead of each re-lowering
        from ..interp.bytecode.compiler import BARE, compiler_for_hash
        comp = compiler_for_hash(self.fingerprint, self.program,
                                 self.sema, BARE)
        for fn in self.program.functions():
            comp.function(fn)
            comp.stmt(fn.body)
        for wid in range(self.workers):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, wid, self.shm, self.program, self.sema,
                      self.fingerprint, self.arena_base
                      + wid * self.arena_bytes,
                      self.arena_base + (wid + 1) * self.arena_bytes),
                daemon=True,
                name=f"repro-mc-{wid}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def degrade(self, reason: str) -> None:
        """Kill the pool and route every later dispatch to the
        simulated fallback (the segment stays mapped — the parent
        machine keeps running on it)."""
        self.degraded = True
        self.degrade_reason = reason
        self._kill_pool()

    def _kill_pool(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except Exception:
                pass
            try:
                conn.close()
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck in D state
                proc.kill()
                proc.join(timeout=2.0)
        self._procs = []
        self._conns = []

    def close(self) -> None:
        """Shut the pool down and release the segment.  The parent
        memory is detached first (snapshotted into an ordinary
        bytearray) so the outcome stays inspectable after unlink."""
        if self.closed:
            return
        self.closed = True
        self._kill_pool()
        try:
            self.memory.detach()
        except Exception:
            pass
        try:
            self.shm.close()
        except Exception:
            pass
        try:
            self.shm.unlink()
        except Exception:
            pass

    # -- dispatch ---------------------------------------------------------
    def run_tasks(self, kind: str, specs: List[dict]) -> List[tuple]:
        """Send one task per spec (round-robin over workers), collect
        one reply per task.  A dead pipe or reply timeout kills the
        pool and raises :class:`WorkerCrash`; worker-level task errors
        come back as ``("err", code, msg)`` entries for the caller."""
        self.ensure_pool()
        n = len(self._conns)
        lanes = [self._conns[i % n] for i in range(len(specs))]
        for spec, conn in zip(specs, lanes):
            conn.send((kind, spec))
        replies: List[Optional[tuple]] = [None] * len(specs)
        dead: Set[int] = set()
        crash: Optional[str] = None
        for i, conn in enumerate(lanes):
            wid = i % n
            if wid in dead:
                continue
            try:
                if not conn.poll(self.worker_timeout):
                    raise EOFError("reply timeout")
                replies[i] = conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                dead.add(wid)
                code = self._procs[wid].exitcode
                crash = crash or (
                    f"worker {wid} died mid-task "
                    f"(exitcode={code}, {exc or 'pipe closed'})"
                )
        if crash is not None:
            self.degrade(crash)
            raise WorkerCrash(crash)
        return replies  # type: ignore[return-value]

    # -- task-spec helpers ------------------------------------------------
    def context_maps(self, machine: Machine) -> Tuple[list, list, list]:
        """(globals, frame, strlits) nid->address bindings currently in
        scope on the parent machine, as pickle-cheap pair lists."""
        globals_map = [(decl.nid, addr) for decl, addr
                       in machine.globals_frame.vars.items()]
        frame_map = []
        if machine.frames:
            frame_map = [(decl.nid, addr) for decl, addr
                         in machine.frames[-1].vars.items()]
        strlits = list(machine._strlit_cache.items())
        return globals_map, frame_map, strlits

    def sync_slots_for(self, origins: List[int]) -> Dict[int, int]:
        """Absolute slot addresses for serialized-statement origins;
        slots are assigned once per origin and zeroed by the caller
        before each loop execution."""
        for origin in origins:
            if origin not in self._origin_slots:
                index = len(self._origin_slots)
                if index >= self.sync_slots:
                    raise ParallelError(
                        f"sync region exhausted ({self.sync_slots} slots)",
                        code="RT-PLAN",
                    )
                self._origin_slots[origin] = \
                    self.sync_base + index * _SLOT_BYTES
        return {origin: self._origin_slots[origin] for origin in origins}

    def zero_slots(self, slots: Dict[int, int]) -> None:
        zero = b"\0" * _SLOT_BYTES
        for addr in slots.values():
            self.memory.data[addr:addr + _SLOT_BYTES] = zero


def _fingerprint_for(program: ast.Program) -> str:
    from ..interp.bytecode.compiler import source_fingerprint
    return source_fingerprint(print_program(program))


# ---------------------------------------------------------------------------
# parent side: controllers
# ---------------------------------------------------------------------------

class _ProcessMixin:
    """Shared plumbing for the process controllers: the capability
    audit (cached per loop), fallback routing, and sink/trace notes."""

    session: ProcessSession

    def _init_process(self, session: ProcessSession, kind_doall: bool):
        self.session = session
        self._kind_doall = kind_doall
        self._audit: Optional[LoopAudit] = None
        self._noted_fallback: Set[str] = set()

    def _loop_audit(self) -> LoopAudit:
        if self._audit is None:
            runner = self.runner
            self._audit = audit_loop(
                self.tloop.loop, runner.tresult.sema, self._kind_doall,
                runner.nthreads, self.session.workers, runner.chunk,
                set(runner.machine.loop_controllers),
            )
        return self._audit

    def _dispatch_reasons(self, machine: Machine) -> List[str]:
        """Audit verdict plus dispatch-time conditions (pool health,
        injector/watchdog instrumentation, string-literal interning)."""
        runner = self.runner
        audit = self._loop_audit()
        reasons = list(audit.reasons)
        if self.session.degraded:
            reasons.append(MC_DEGRADED)
        if getattr(runner, "fault_injectors", None) \
                or getattr(runner, "watchdog", None) is not None:
            # injected faults and statement watchdogs hook the *parent*
            # machine; running on workers would silently disarm them
            reasons.append(MC_INSTRUMENTED)
        if any(nid not in machine._strlit_cache for nid in audit.strlits):
            reasons.append(MC_STRLIT)
        return reasons

    def _note_fallback(self, loop: ast.LoopStmt,
                       reasons: List[str]) -> None:
        key = ",".join(reasons)
        tracer = self._tracer
        if tracer:
            tracer.metrics.inc("runtime.mc_fallbacks")
        if key in self._noted_fallback:
            return
        self._noted_fallback.add(key)
        sink = getattr(self.runner, "sink", None)
        if sink is not None:
            sink.note(
                "MC-FALLBACK",
                f"loop {loop.label!r} ran on the simulated backend "
                f"({', '.join(reasons)})",
                loop=loop.label, loc=loop.loc, phase="runtime",
            )

    def _merge_sink(self, stats, payload: tuple) -> None:
        cycles, instructions, loads, stores = payload
        sink = stats.sink
        sink.cycles += cycles
        sink.instructions += instructions
        sink.loads += loads
        sink.stores += stores

    def _raise_task_error(self, loop: ast.LoopStmt, reply: tuple) -> None:
        code = reply[1]
        if not code.startswith("RT-"):
            code = "RT-WORKER-FAULT"
        raise ParallelError(
            f"worker task failed in loop {loop.label!r}: "
            f"{reply[1]}: {reply[2]}",
            code=code, loop=loop.label, loc=loop.loc,
        )

    def _finish_accounting(self, machine: Machine, execution,
                           makespan: float) -> None:
        """The simulated controllers' common tail: bandwidth cap, fork
        cost, program-clock advance (bit-identical formulae)."""
        from ..interp.machine import COSTS
        nthreads = self.runner.nthreads
        mem_cycles = sum(
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ) - sum(execution._mem_seen)
        execution._mem_seen = [
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ]
        makespan = max(makespan, sync.bandwidth_makespan(mem_cycles))
        fork = sync.fork_join_cost(nthreads)
        execution.makespan += makespan
        execution.runtime_cycles += fork
        machine.cost.cycles += makespan + fork


class _ProcessDoallController(_ProcessMixin, _DoallController):
    """DOALL over real worker processes: the same static chunking as
    the simulated controller, but chunks execute concurrently against
    the shared segment.  Worker cost sinks are merged per thread and
    the makespan/bandwidth/fork tail replays the simulated arithmetic,
    so modeled cycles stay bit-identical."""

    def __init__(self, runner, tloop, session: ProcessSession):
        super().__init__(runner, tloop)
        self._init_process(session, kind_doall=True)

    def _parallel_exec(self, machine: Machine, loop: ast.For) -> None:
        reasons = self._dispatch_reasons(machine)
        if reasons:
            self._note_fallback(loop, reasons)
            _DoallController._parallel_exec(self, machine, loop)
            return
        execution = self.execution
        execution.executions += 1
        nthreads = self.runner.nthreads
        if loop.init is not None:
            machine.exec_stmt(loop.init)
        control, addr, lo, hi, step, inclusive = _canonical_bounds(
            machine, loop
        )
        if inclusive:
            hi += 1
        total = max(0, -(-(hi - lo) // step))
        tracer = self._tracer
        t0 = machine.cost.cycles
        globals_map, frame_map, strlits = self.session.context_maps(machine)
        tasks = []
        for tid in range(nthreads):
            chunk_lo = tid * total // nthreads
            chunk_hi = (tid + 1) * total // nthreads
            if chunk_lo >= chunk_hi:
                continue
            tasks.append({
                "label": loop.label, "tid": tid, "nthreads": nthreads,
                "chunk_lo": chunk_lo, "chunk_hi": chunk_hi,
                "lo": lo, "step": step, "control_nid": control.nid,
                "globals": globals_map, "frame": frame_map,
                "strlits": strlits,
            })
        replies = self.session.run_tasks("doall", tasks) if tasks else []
        for reply in replies:
            if reply[0] != "ok":
                self._raise_task_error(loop, reply)
        spans = [0.0] * nthreads
        for lane, reply in enumerate(replies):
            _ok, tid, lines, sink_payload, iters, wall = reply
            stats = execution.threads[tid]
            stats.sync_cycles += sync.STATIC_CHUNK_SETUP
            self._merge_sink(stats, sink_payload)
            spans[tid] = sink_payload[0]
            stats.iterations += iters
            execution.iterations += iters
            machine.output.extend(lines)
            self.session.worker_samples.append(
                (lane % self.session.workers, "doall-chunk",
                 wall[0], wall[1],
                 {"loop": loop.label, "tid": tid, "iterations": iters})
            )
            if tracer:
                tracer.event("doall-chunk", tid, t0, dur=spans[tid],
                             loop=loop.label,
                             iterations=stats.iterations)
        makespan = max(spans) if spans else 0.0
        self._finish_accounting(machine, execution, makespan)
        machine.memory.write_scalar(addr, control.ctype.fmt,
                                    lo + total * step)


class _ProcessDoacrossController(_ProcessMixin, _DoacrossController):
    """DOACROSS over real worker processes: iteration k runs on worker
    k mod N; serialized statements synchronize through shared-segment
    post/wait counters instead of the simulated recurrence's ledger.
    Workers report per-iteration segment timings so the parent replays
    the simulated pipelining recurrence for bit-identical cycles."""

    def __init__(self, runner, tloop, session: ProcessSession):
        super().__init__(runner, tloop)
        self._init_process(session, kind_doall=False)

    def _parallel_exec(self, machine: Machine, loop: ast.LoopStmt) -> None:
        reasons = self._dispatch_reasons(machine)
        if reasons:
            self._note_fallback(loop, reasons)
            _DoacrossController._parallel_exec(self, machine, loop)
            return
        execution = self.execution
        execution.executions += 1
        runner = self.runner
        nthreads = runner.nthreads
        session = self.session
        tracer = self._tracer
        t0 = machine.cost.cycles
        if loop.init is not None:
            machine.exec_stmt(loop.init)
        control, addr, lo, hi, step, inclusive = _canonical_bounds(
            machine, loop
        )
        if inclusive:
            hi += 1
        total = max(0, -(-(hi - lo) // step))
        origins = sorted(self.tloop.serial_stmt_origins)
        slots = session.sync_slots_for(origins)
        session.zero_slots(slots)
        globals_map, frame_map, strlits = session.context_maps(machine)
        tasks = []
        for tid in range(nthreads):
            if tid >= total and tid != total % nthreads:
                continue
            tasks.append({
                "label": loop.label, "tid": tid, "nthreads": nthreads,
                "total": total, "lo": lo, "step": step,
                "control_nid": control.nid,
                "final_cond_tid": total % nthreads,
                "slots": list(slots.items()),
                "spin_timeout": session.spin_timeout,
                "globals": globals_map, "frame": frame_map,
                "strlits": strlits,
            })
        replies = session.run_tasks("doacross", tasks) if tasks else []
        for reply in replies:
            if reply[0] != "ok":
                self._raise_task_error(loop, reply)
        # merge busy work + output (program order = ascending k)
        per_iter: Dict[int, tuple] = {}
        for lane, reply in enumerate(replies):
            _ok, tid, lines, sink_payload, iters, wall = reply
            stats = execution.threads[tid]
            self._merge_sink(stats, sink_payload)
            cursor = 0
            for k, segments, n_lines in iters:
                per_iter[k] = (tid, segments,
                               lines[cursor:cursor + n_lines])
                cursor += n_lines
            session.worker_samples.append(
                (lane % session.workers, "doacross-strip",
                 wall[0], wall[1],
                 {"loop": loop.label, "tid": tid,
                  "iterations": len(iters)})
            )
        # replay the simulated pipelining recurrence over the reported
        # segments, in global iteration order
        thread_free = [0.0] * nthreads
        sync_done: Dict[int, float] = {}
        for k in range(total):
            tid, segments, lines = per_iter[k]
            stats = execution.threads[tid]
            stats.sync_cycles += sync.DYNAMIC_DEQUEUE
            stats.iterations += 1
            execution.iterations += 1
            machine.output.extend(lines)
            clock = thread_free[tid] + sync.DYNAMIC_DEQUEUE
            iter_start = clock
            for origin, is_serial, cycles in segments:
                if is_serial:
                    token = sync_done.get(origin, 0.0)
                    if token > clock:
                        stats.wait_cycles += token - clock
                        if tracer:
                            tracer.event(
                                "token-wait", tid, t0 + clock,
                                dur=token - clock, loop=loop.label,
                                origin=origin, k=k,
                            )
                            tracer.metrics.inc("runtime.token_waits")
                            tracer.metrics.inc(
                                "runtime.token_wait_cycles",
                                token - clock,
                            )
                        clock = token
                    stats.sync_cycles += (
                        sync.POST_COST + sync.WAIT_CHECK_COST
                    )
                    clock += cycles
                    sync_done[origin] = clock
                    if tracer:
                        tracer.event("token-post", tid, t0 + clock,
                                     loop=loop.label, origin=origin, k=k)
                        tracer.metrics.inc("runtime.token_posts")
                else:
                    clock += cycles
            if tracer:
                tracer.event("iteration", tid, t0 + iter_start,
                             dur=clock - iter_start, loop=loop.label, k=k)
            thread_free[tid] = clock
        makespan = max(thread_free) if thread_free else 0.0
        self._finish_accounting(machine, execution, makespan)
        machine.memory.write_scalar(addr, control.ctype.fmt,
                                    lo + total * step)
