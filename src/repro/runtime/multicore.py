"""True multi-core execution backend over OS shared memory.

The simulated runtime (:mod:`repro.runtime.parallel`) executes chunks
one after another on virtual threads; this module executes them *at
the same time* on real worker processes.  The entire expanded heap
lives in one ``multiprocessing.shared_memory`` segment, so a
redirected access from any worker hits the same bytes the parent (and
every other worker) sees — exactly the property the paper's expansion
transform establishes: after expansion, per-thread copies are disjoint
spans of one shared structure, so threads need no further isolation.

Segment layout (addresses are plain ints into one flat mapping)::

    0                parent_limit   sync_base      arena 0     arena W-1
    |  parent region |  sync slots  |  worker 0  | ... |  worker W-1  |
    |  globals+heap  |  8B counters |  stack     |     |  stack       |

* **parent region** — the program's ordinary address space.  The
  parent machine allocates globals, rodata and heap here; bonded
  layout makes this trivial: copy 0 *is* the shared copy, so worker
  reads/writes of expanded structures land in this region unchanged.
* **sync slots** — one 8-byte little-endian counter per serialized
  statement origin (DOACROSS post/wait).  Slot value ``k`` means
  iterations ``0..k-1`` have left that serialized section.
* **worker arenas** — fixed-size private spans, one per worker, for
  call-stack allocations made *inside* a chunk (locals of callees,
  VLA copies).  Reset between tasks; never aliased by the parent.

Workers are forked lazily on first dispatch and reused (warm pool)
across loops and executions.  A task message carries only scalars:
loop label, tid, chunk bounds, and nid→address maps for the frame in
scope — no pickled program state.  The worker resolves the loop from
the fork-inherited AST and executes it on a ``bytecode-bare`` machine
whose compiled code is memoized by *source hash*
(:func:`repro.interp.bytecode.compiler.compiler_for_hash`), so every
task on a warm worker reuses the lowered closures.

Process-capability is audited per loop (``MC-*`` reason codes below);
loops that cannot run safely on workers — e.g. they allocate heap, so
address assignment would race — fall back to the simulated controller
on the same shared buffer, which is bit-identical by construction.

Memory model note: token posts rely on x86-TSO store ordering plus
CPython's per-process GIL — all data stores of a serialized section
precede the counter store in program order, and an 8-byte aligned
store is not torn.  See DESIGN.md §13.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import random
import signal
import struct
import threading
import time
import weakref
from typing import Dict, List, Optional, Set, Tuple

from ..frontend import ast, print_program
from ..frontend.ctypes import PointerType
from ..interp import memory as mem
from ..interp.machine import (
    BreakSignal, ContinueSignal, CostSink, Frame, Machine,
)
from ..analysis.cfg import build_loop_body_cfg
from ..analysis.dataflow import UpwardExposure, solve
from ..analysis.profiler import find_control_decl
from ..obs import NULL_TRACER
from ..transform.rewrite import origin_of
from . import sync
from .parallel import (
    ParallelError, _DoacrossController, _DoallController, _canonical_bounds,
)

# ---------------------------------------------------------------------------
# audit reason codes (why a loop fell back to the simulated controller)
# ---------------------------------------------------------------------------

MC_ALLOC = "MC-ALLOC"              # heap alloc/free inside the loop
MC_NONCANONICAL = "MC-NONCANONICAL"  # not a canonical bounded for loop
MC_BOUND = "MC-BOUND"              # DOACROSS bound not provably stable
MC_CONTROL = "MC-CONTROL"          # induction variable assigned in body
MC_WORKERS = "MC-WORKERS"          # DOACROSS needs workers >= nthreads
MC_BREAK = "MC-BREAK"              # DOACROSS loop may break early
MC_RETURN = "MC-RETURN"            # return escapes the loop body
MC_CHUNK = "MC-CHUNK"              # DOACROSS process path needs chunk==1
MC_STRLIT = "MC-STRLIT"            # un-interned string literal in loop
MC_INDIRECT = "MC-INDIRECT"        # indirect call — callees unknown
MC_NESTED = "MC-NESTED"            # nested controlled loop in subtree
MC_INSTRUMENTED = "MC-INSTRUMENTED"  # fault injectors / watchdog active
MC_UNAVAILABLE = "MC-UNAVAILABLE"  # no fork / no shared memory on host
MC_DEGRADED = "MC-DEGRADED"        # pool lost earlier (worker crash)

# supervision event codes (not fallback reasons: emitted by the
# supervisor as it walks the recovery/degradation ladder)
MC_RESTART = "MC-RESTART"          # dead worker respawned from warm image
MC_RETRY = "MC-RETRY"              # in-flight chunk/strip re-executed
MC_SHRINK = "MC-SHRINK"            # restart budget gone; pool shrank
MC_DEGRADE = "MC-DEGRADE"          # ladder bottom: simulated fallback
MC_TOKEN_REISSUE = "MC-TOKEN-REISSUE"  # dropped sync token repaired

_ALLOC_BUILTINS = frozenset(("malloc", "calloc", "realloc", "free"))

#: sync-slot codec: one 8-byte little-endian counter per serialized
#: statement origin
_SLOT = struct.Struct("<q")
_SLOT_BYTES = 8

#: segment sizing defaults (overridable via the ``mc`` options dict)
DEFAULT_SEGMENT_BYTES = 1 << 23    # parent region: globals + heap
DEFAULT_ARENA_BYTES = 1 << 21      # per-worker call-stack arena
DEFAULT_SYNC_SLOTS = 512
DEFAULT_WORKER_TIMEOUT = 120.0     # parent-side wait per task reply (s)
DEFAULT_SPIN_TIMEOUT = 30.0        # worker-side wait per sync token (s)
DEFAULT_HEARTBEAT_INTERVAL = 0.02  # worker beat period (s)
DEFAULT_HEARTBEAT_TIMEOUT = 5.0    # stalled-beat revocation threshold (s)
DEFAULT_MAX_RESTARTS = 3           # worker respawns per session
DEFAULT_RETRY_BUDGET = 2           # re-dispatches per task

#: heartbeat/lease region: four 8-byte words per worker, between the
#: sync slots and the arenas.  BEAT is bumped by a worker-side timer
#: thread; STATUS encodes ``(tid+1) << 3 | phase`` for the task the
#: worker is currently executing (the write fence: phase >= PHASE_BODY
#: means program-visible stores may have landed); ITER/DIRTY implement
#: the DOACROSS iteration lease (completed-local-iteration count, and a
#: dirty bit held across each iteration's serialized writes).
HB_BEAT, HB_STATUS, HB_ITER, HB_DIRTY = 0, 8, 16, 24
HB_BYTES = 4 * _SLOT_BYTES

PHASE_IDLE, PHASE_BOUND, PHASE_BODY, PHASE_DONE = 0, 1, 2, 3

#: pure-spin iterations before _spin_wait starts sleeping
SPIN_THRESHOLD = 200
_BACKOFF_START_S = 0.00005
_BACKOFF_MAX_S = 0.002

#: /dev/shm segment name prefix (leak regression tests grep for it)
SEGMENT_PREFIX = "repro-mc"


class WorkerCrash(ParallelError):
    """A worker process died mid-task (signal, hard exit, timeout)."""

    default_code = "RT-WORKER-CRASH"


# ---------------------------------------------------------------------------
# availability probe
# ---------------------------------------------------------------------------

_AVAILABLE: Optional[Tuple[bool, str]] = None


def process_backend_available(recheck: bool = False) -> Tuple[bool, str]:
    """Whether this host can run the process backend: a ``fork`` start
    method (workers inherit the AST instead of pickling it) and a
    working POSIX shared-memory mount (``/dev/shm`` on Linux).  The
    probe result is cached; ``recheck=True`` re-probes."""
    global _AVAILABLE
    if _AVAILABLE is not None and not recheck:
        return _AVAILABLE
    if "fork" not in multiprocessing.get_all_start_methods():
        _AVAILABLE = (False, "no fork start method on this platform")
        return _AVAILABLE
    try:
        from multiprocessing import shared_memory
        probe = shared_memory.SharedMemory(create=True, size=16)
        probe.buf[0] = 1
        probe.close()
        probe.unlink()
    except Exception as exc:  # pragma: no cover - host-dependent
        _AVAILABLE = (False, f"shared memory unavailable: {exc}")
        return _AVAILABLE
    _AVAILABLE = (True, "")
    return _AVAILABLE


# ---------------------------------------------------------------------------
# per-loop process-capability audit
# ---------------------------------------------------------------------------

class LoopAudit:
    """Static process-capability verdict for one transformed loop."""

    def __init__(self, reasons: List[str], strlits: Set[int]):
        self.reasons = reasons
        #: StrLit nids the loop may evaluate; they must be interned
        #: (parent-side RODATA) before dispatch, else MC-STRLIT
        self.strlits = strlits

    @property
    def ok(self) -> bool:
        return not self.reasons


def _walk_subtree(loop: ast.LoopStmt, sema) -> Tuple[
        List[ast.Node], List[str]]:
    """All nodes reachable from the loop: its own subtree plus the
    bodies of every transitively called function.  Returns the node
    list and any reasons discovered during the walk."""
    reasons: List[str] = []
    nodes: List[ast.Node] = []
    seen_fns: Set[int] = set()
    functions = getattr(sema, "functions", {}) or {}
    pending = [loop]
    while pending:
        root = pending.pop()
        for node in root.walk():
            nodes.append(node)
            if isinstance(node, ast.Call):
                name = node.callee_name
                if name is None:
                    if MC_INDIRECT not in reasons:
                        reasons.append(MC_INDIRECT)
                    continue
                if name in _ALLOC_BUILTINS and MC_ALLOC not in reasons:
                    reasons.append(MC_ALLOC)
                fn = functions.get(name)
                if fn is not None and fn.nid not in seen_fns:
                    seen_fns.add(fn.nid)
                    pending.append(fn.body)
    return nodes, reasons


def _assigned_decls(nodes: List[ast.Node]) -> Set[int]:
    """nids of VarDecls written anywhere in the node set."""
    written: Set[int] = set()
    for node in nodes:
        if isinstance(node, ast.Assign) and isinstance(node.target,
                                                       ast.Ident):
            decl = node.target.decl
            if decl is not None:
                written.add(decl.nid)
        elif isinstance(node, ast.Unary) and node.op in (
                "++", "--", "p++", "p--"):
            operand = getattr(node, "operand", None)
            if isinstance(operand, ast.Ident) and operand.decl is not None:
                written.add(operand.decl.nid)
    return written


def _has_toplevel_break(body: ast.Stmt) -> bool:
    """Whether a ``break`` in ``body`` targets the *enclosing* loop
    (breaks bound to loops nested inside ``body`` do not count)."""
    breaks = {id(n) for n in body.walk() if isinstance(n, ast.Break)}
    if not breaks:
        return False
    for node in body.walk():
        if isinstance(node, ast.LoopStmt):
            for inner in node.body.walk():
                if isinstance(inner, ast.Break):
                    breaks.discard(id(inner))
    return bool(breaks)


def audit_loop(loop: ast.LoopStmt, sema, kind_doall: bool,
               nthreads: int, workers: int, chunk: int,
               controlled_nids: Set[int]) -> LoopAudit:
    """Decide whether ``loop`` may execute on worker processes.

    The audit is conservative: any construct whose cross-process
    semantics differ from the simulated interleaving — heap allocation
    (the bump allocator's address assignment is parent state), nested
    controlled loops (their controllers live on the parent machine),
    unstable DOACROSS trip counts — routes the loop to the simulated
    controller instead.  Falling back is always correct: the simulated
    controller runs on the same shared buffer.
    """
    nodes, reasons = _walk_subtree(loop, sema)
    strlits = {n.nid for n in nodes if isinstance(n, ast.StrLit)}
    for node in nodes:
        if node is not loop and isinstance(node, ast.LoopStmt) \
                and node.nid in controlled_nids:
            reasons.append(MC_NESTED)
            break
    if any(isinstance(n, ast.Return) for n in loop.body.walk()):
        # a return escaping the loop exits the enclosing function on
        # the simulated path; workers cannot replicate that
        reasons.append(MC_RETURN)

    if not isinstance(loop, ast.For):
        reasons.append(MC_NONCANONICAL)
        return LoopAudit(reasons, strlits)
    control = find_control_decl(loop)
    cond = loop.cond
    canonical = (
        control is not None
        and isinstance(cond, ast.Binary) and cond.op in ("<", "<=")
        and isinstance(cond.left, ast.Ident) and cond.left.decl is control
        and (
            (isinstance(loop.step, ast.Unary)
             and loop.step.op in ("++", "p++"))
            or (isinstance(loop.step, ast.Assign) and loop.step.op == "+="
                and isinstance(loop.step.value, ast.IntLit))
        )
    )
    if not canonical:
        reasons.append(MC_NONCANONICAL)
        return LoopAudit(reasons, strlits)

    # the trip count is precomputed parent-side, so writes to the
    # induction variable inside the body would desynchronize chunks.
    # The loop's own init/step subtrees are the canonical writes —
    # exclude them before scanning for rogue assignments.
    canonical_writers: Set[int] = set()
    for part in (loop.init, loop.step):
        if part is not None:
            canonical_writers |= {id(n) for n in part.walk()}
    written = _assigned_decls(
        [n for n in nodes if id(n) not in canonical_writers]
    )
    if control.nid in written:
        reasons.append(MC_CONTROL)

    if not kind_doall:
        if _has_toplevel_break(loop.body):
            # the simulated DOACROSS path honors an early break; a
            # pre-planned concurrent strip cannot
            reasons.append(MC_BREAK)
        # DOACROSS: the iteration->thread mapping and the final failing
        # condition evaluation are fixed at dispatch, so the bound must
        # be provably stable and every strip must run concurrently
        if chunk != 1:
            reasons.append(MC_CHUNK)
        if workers < nthreads:
            reasons.append(MC_WORKERS)
        bound = cond.right
        if isinstance(bound, ast.IntLit):
            pass
        elif isinstance(bound, ast.Ident) and bound.decl is not None:
            if bound.decl.nid in written:
                reasons.append(MC_BOUND)
        else:
            reasons.append(MC_BOUND)
    return LoopAudit(reasons, strlits)


# ---------------------------------------------------------------------------
# chunk retry-safety audit (may a DOALL chunk be re-executed whole?)
# ---------------------------------------------------------------------------

def _base_decl(expr: ast.Expr) -> Optional[ast.VarDecl]:
    """Root VarDecl of an access chain (``a[i].f`` -> decl of ``a``)."""
    while True:
        if isinstance(expr, ast.Ident):
            return expr.decl
        if isinstance(expr, (ast.Index, ast.Member)):
            expr = expr.base
        elif isinstance(expr, ast.Unary) and expr.op == "*":
            expr = expr.operand
        else:
            return None


def audit_retry_safety(loop: ast.LoopStmt, sema,
                       private_origins: Set[int]) -> List[str]:
    """Why re-executing a partially-run DOALL chunk of ``loop`` would
    NOT be sound (empty list == retry-safe).

    A chunk that died *past its write fence* may have landed some of
    its stores; re-running it from the start is sound iff every store
    it can repeat is insensitive to having already happened once:

    * accesses the transform privatized (``origin in private_origins``)
      are rewritten by every iteration by construction — that is why
      they were privatized — so repeating them is idempotent;
    * a non-private memory location that is *written but never read*
      inside the body is overwritten with the same value on the re-run
      (DOALL iterations are independent, so the value depends only on
      the induction variable and loop-invariant inputs);
    * a scalar is safe unless one iteration can read it before writing
      it (upward-exposed, per the region dataflow) *and* the body also
      writes it — the classic read-modify-write accumulator.

    Everything else — non-private read+written bases, writes through
    unresolvable or pointer-typed bases (unknown aliasing), callees
    that write non-local scalars — is conservatively unsafe.
    """
    reasons: List[str] = []
    nodes, _ = _walk_subtree(loop, sema)
    control = find_control_decl(loop) if isinstance(loop, ast.For) else None

    # -- memory accesses (Index / Member / deref), whole subtree ---------
    plain_targets: Set[int] = set()    # ids of '=' assign targets
    rw_targets: Set[int] = set()       # ids of compound / ++ / -- targets
    stmt_origin: Dict[int, int] = {}   # id(target) -> write stmt origin
    for node in nodes:
        if isinstance(node, ast.Assign):
            (plain_targets if node.op == "=" else rw_targets).add(
                id(node.target))
            stmt_origin[id(node.target)] = origin_of(node)
        elif isinstance(node, ast.Unary) and node.op in (
                "++", "--", "p++", "p--"):
            rw_targets.add(id(node.operand))
            stmt_origin[id(node.operand)] = origin_of(node)
    written: Set[int] = set()
    read: Set[int] = set()
    for node in nodes:
        if not (isinstance(node, (ast.Index, ast.Member))
                or (isinstance(node, ast.Unary) and node.op == "*")):
            continue
        # privatization is recorded on the *write statement's* origin
        # (the Assign / inc-dec node — same convention as the race
        # lint's private-copy check), not on the access expression
        if (origin_of(node) in private_origins
                or stmt_origin.get(id(node)) in private_origins):
            continue
        decl = _base_decl(node)
        is_write = id(node) in plain_targets or id(node) in rw_targets
        is_read = id(node) not in plain_targets
        if is_write:
            if decl is None:
                reasons.append("write through unresolvable base")
                continue
            if isinstance(decl.ctype, PointerType):
                reasons.append(
                    f"write through pointer {decl.name!r} (may alias)")
                continue
            written.add(decl.nid)
        if is_read and decl is not None:
            read.add(decl.nid)
        elif is_read and decl is None:
            # reads are idempotent whatever they alias
            pass
    for nid in sorted(written & read):
        reasons.append(f"structure both read and written (decl {nid})")

    # -- scalars: upward-exposed AND written in one iteration ------------
    try:
        exposed = set(solve(build_loop_body_cfg(loop),
                            UpwardExposure()).at_entry)
    except Exception:
        reasons.append("region dataflow unavailable")
        exposed = set()
    canonical_writers: Set[int] = set()
    if isinstance(loop, ast.For):
        for part in (loop.init, loop.step):
            if part is not None:
                canonical_writers |= {id(n) for n in part.walk()}
    scalar_writes = _assigned_decls(
        [n for n in loop.body.walk() if id(n) not in canonical_writers]
    )
    if control is not None:
        scalar_writes.discard(control.nid)
    for nid in sorted(exposed & scalar_writes):
        reasons.append(f"scalar read-modify-write (decl {nid})")

    # -- callees that write scalars outside their own frame --------------
    functions = getattr(sema, "functions", {}) or {}
    seen_fns: Set[int] = set()
    for node in nodes:
        if not isinstance(node, ast.Call) or node.callee_name is None:
            continue
        fn = functions.get(node.callee_name)
        if fn is None or fn.nid in seen_fns:
            continue
        seen_fns.add(fn.nid)
        local = {p.nid for p in fn.params}
        local |= {n.nid for n in fn.body.walk()
                  if isinstance(n, ast.VarDecl)}
        escaped = _assigned_decls(list(fn.body.walk())) - local
        if escaped:
            reasons.append(
                f"callee {node.callee_name!r} writes non-local scalars")
    return reasons


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _decl_index(program: ast.Program, sema) -> Dict[int, ast.VarDecl]:
    """nid -> VarDecl for every declaration a task map may reference."""
    index: Dict[int, ast.VarDecl] = {}
    for decl in getattr(sema, "globals", ()) or ():
        index[decl.nid] = decl
    for fn in program.functions():
        for param in fn.params:
            index[param.nid] = param
        for node in fn.body.walk():
            if isinstance(node, ast.VarDecl):
                index[node.nid] = node
    tc = getattr(sema, "thread_context", None) or {}
    for decl in tc.values():
        if decl is not None:
            index[decl.nid] = decl
    return index


def _spin_wait(data, slot_addr: int, want: int, timeout_s: float,
               counters: Optional[dict] = None,
               unpack=_SLOT.unpack_from) -> None:
    """Wait until the counter at ``slot_addr`` reaches ``want``.

    Pure spinning is kept only for the first :data:`SPIN_THRESHOLD`
    checks (tokens usually arrive within a pipeline stage); past that
    the wait escalates through exponentially longer ``time.sleep``
    calls so a stalled producer costs scheduler wakeups, not a burnt
    core.  Each sleep is counted into ``counters["backoffs"]`` (the
    parent aggregates them as ``runtime.mc_spin_backoffs``)."""
    if unpack(data, slot_addr)[0] >= want:
        return
    spins = 0
    delay = _BACKOFF_START_S
    deadline = time.monotonic() + timeout_s
    while unpack(data, slot_addr)[0] < want:
        spins += 1
        if spins < SPIN_THRESHOLD:
            continue
        if counters is not None:
            counters["backoffs"] = counters.get("backoffs", 0) + 1
        time.sleep(delay)
        delay = min(delay * 2.0, _BACKOFF_MAX_S)
        if time.monotonic() > deadline:
            raise _SpinTimeout(slot_addr, want)


class _SpinTimeout(Exception):
    def __init__(self, slot_addr: int, want: int):
        super().__init__(f"sync slot @{slot_addr} never reached {want}")
        self.slot_addr = slot_addr
        self.want = want


class _WorkerHB:
    """Worker-side view of this worker's heartbeat/lease words.

    The beat word is bumped by a daemon timer thread; the task code
    writes STATUS (current tid + phase — the write fence), ITER and
    DIRTY (the DOACROSS iteration lease).  All words are 8-byte aligned
    single stores, so the parent never observes a torn value."""

    __slots__ = ("data", "base", "stall_until")

    def __init__(self, data, base: int):
        self.data = data
        self.base = base
        self.stall_until = 0.0

    def stalled(self) -> bool:
        return bool(self.stall_until) and (
            self.stall_until < 0 or time.monotonic() < self.stall_until)

    def stall(self, seconds: float) -> None:
        self.stall_until = (-1.0 if seconds < 0
                            else time.monotonic() + seconds)

    def status(self, tid: int, phase: int) -> None:
        _SLOT.pack_into(self.data, self.base + HB_STATUS,
                        ((tid + 1) << 3) | phase)

    def set_iter(self, count: int) -> None:
        _SLOT.pack_into(self.data, self.base + HB_ITER, count)

    def set_dirty(self, flag: int) -> None:
        _SLOT.pack_into(self.data, self.base + HB_DIRTY, flag)


def _apply_chaos(hb: _WorkerHB, chaos: dict) -> None:
    """Honor the parent-scheduled chaos directives that apply at task
    start: heartbeat stalls and an artificial hold (the hold keeps the
    task in flight long enough for the supervisor's staleness check to
    observe the stalled beat deterministically)."""
    stall = chaos.get("stall_heartbeat")
    if stall is not None:
        hb.stall(float(stall))
    hold = chaos.get("hold")
    if hold:
        time.sleep(float(hold))


def _chaos_hits(directive: dict, origin: int, k: int) -> bool:
    """Deterministic per-(origin, iteration) draw for token chaos."""
    ks = directive.get("ks")
    if ks is not None:
        return k in ks
    rate = float(directive.get("rate", 1.0))
    if rate >= 1.0:
        return True
    seed = int(directive.get("seed", 0))
    return random.Random(
        seed * 1000003 + origin * 8191 + k).random() < rate


def _post_token(data, slots: Dict[int, int], origin: int, k: int,
                chaos: dict, dropped: List[Tuple[int, int]]) -> None:
    """Post one sync token, subject to chaos: a dropped post is
    *recorded* in the iteration message instead of written (the parent
    re-issues it — the lease-recovery path under test); a delayed post
    sleeps first (wall-clock only; modeled cycles are unaffected)."""
    drop = chaos.get("drop_posts")
    if drop and _chaos_hits(drop, origin, k):
        dropped.append((origin, k))
        return
    delay = chaos.get("delay_posts")
    if delay and _chaos_hits(delay, origin, k):
        time.sleep(float(delay.get("seconds", 0.005)))
    _SLOT.pack_into(data, slots[origin], k + 1)


def _worker_main(conn, wid: int, shm, program, sema, fingerprint: str,
                 arena_base: int, arena_limit: int, hb_base: int,
                 hb_interval: float,
                 engine: str = "bytecode-bare") -> None:
    """Worker process entry point.  Serves task messages until an
    ``("exit",)`` sentinel or pipe EOF, then hard-exits — ``os._exit``
    skips the multiprocessing atexit machinery, so the fork-inherited
    segment registration is torn down exactly once, by the parent."""
    status = 0
    try:
        from ..interp.bytecode.compiler import BARE, compiler_for_hash
        # bare-variant code memoized on the source hash: the machine's
        # own compiler_for() call resolves to this same object, and a
        # warm worker reuses it for every task of the program (the
        # native tier inherits its .so handles + lowering the same way,
        # via the fork-warm context registry in interp.native.backend)
        compiler_for_hash(fingerprint, program, sema, BARE)
        memory = mem.Memory(check_bounds=False, buffer=shm.buf,
                            base=arena_base, limit=arena_limit)
        machine = Machine(
            program, sema, check_bounds=False,
            engine="native" if engine == "native" else "bytecode-bare",
            memory=memory)
        decls = _decl_index(program, sema)
        loops: Dict[str, ast.LoopStmt] = {}
        hb = _WorkerHB(shm.buf, hb_base)
        stop = threading.Event()

        def _beat() -> None:
            n = 0
            while not stop.wait(hb_interval):
                if hb.stalled():
                    continue
                n += 1
                _SLOT.pack_into(hb.data, hb.base + HB_BEAT, n)

        threading.Thread(target=_beat, daemon=True,
                         name="repro-mc-heartbeat").start()
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "exit":
                break
            spec = msg[1]
            crash = os.environ.get("REPRO_MC_CRASH")
            if crash is not None and crash == str(spec.get("tid")):
                os._exit(42)
            try:
                loop = loops.get(spec["label"])
                if loop is None:
                    loop = loops[spec["label"]] = ast.find_loop(
                        program, spec["label"])
                if msg[0] == "doall":
                    reply = _task_doall(machine, memory, decls, loop,
                                        arena_base, spec, hb)
                else:
                    reply = _task_doacross(machine, memory, decls, loop,
                                           arena_base, spec, conn, hb)
            except _SpinTimeout as exc:
                reply = ("err", spec.get("tid"), "RT-SYNC-TIMEOUT",
                         str(exc))
            except BaseException as exc:
                reply = ("err", spec.get("tid"), type(exc).__name__,
                         str(exc)[:500])
            conn.send(reply)
        stop.set()
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    except BaseException:
        status = 70
    finally:
        try:
            conn.close()
        except Exception:
            pass
    os._exit(status)


def _bind_task(machine: Machine, memory: mem.Memory,
               decls: Dict[int, ast.VarDecl], arena_base: int,
               spec: dict) -> Tuple[int, str]:
    """Reset the worker for one task: fresh arena, fresh cost sink,
    frame/global bindings rebuilt from the nid->address maps, and the
    induction variable rebound to an arena-private slot.  Returns the
    private control address and its codec format."""
    memory.reset_region(arena_base)
    machine.output = []
    machine.cost = CostSink()
    machine._steps = 0
    machine.tid = spec["tid"]
    machine.nthreads = spec["nthreads"]
    machine._strlit_cache = dict(spec["strlits"])
    machine._globals_ready = True
    machine.globals_frame.vars = {
        decls[nid]: addr for nid, addr in spec["globals"]
    }
    frame = Frame(None)
    frame.vars = {decls[nid]: addr for nid, addr in spec["frame"]}
    machine.frames = [frame]
    control = decls[spec["control_nid"]]
    caddr = memory.alloc(control.ctype.size, mem.STACK, label=control.name)
    frame.vars[control] = caddr
    return caddr, control.ctype.fmt


def _task_doall(machine, memory, decls, loop, arena_base, spec, hb):
    """One DOALL chunk: iterations [chunk_lo, chunk_hi) with the
    private induction variable pre-seeded, mirroring the simulated
    controller's per-chunk execution exactly (uncosted control seed;
    per-iteration cond / body / step).

    STATUS is the write fence: it stays at PHASE_BOUND until just
    before the first body statement can store into program memory, so
    a death observed at PHASE_BOUND is always retryable (binding only
    touches the worker-private arena)."""
    tid = spec["tid"]
    hb.status(tid, PHASE_BOUND)
    caddr, fmt = _bind_task(machine, memory, decls, arena_base, spec)
    chaos = spec.get("chaos") or {}
    if chaos:
        _apply_chaos(hb, chaos)
    kill_after = chaos.get("kill_after_iter")
    lo, step = spec["lo"], spec["step"]
    sink = machine.cost
    iters = 0
    meta: dict = {}
    native = None
    if machine.engine == "native":
        # per-iteration chaos kills need the Python loop; everything
        # else dispatches the whole chunk as one compiled call
        if kill_after is None:
            native = machine.native_chunk(loop.nid)
        if native is None:
            low = machine._low
            meta["native"] = False
            if kill_after is not None:
                meta["nl"] = "NL-CHAOS-ITER"
            else:
                meta["nl"] = (machine.native_diag
                              or (low.nl.get(f"chunk:{loop.nid}")
                                  if low is not None else None)
                              or "NL-CHUNK-GATE")
        else:
            meta["native"] = True
    t_start = time.perf_counter_ns()
    memory.write_scalar(caddr, fmt, lo + spec["chunk_lo"] * step)
    hb.status(tid, PHASE_BODY)
    if native is not None:
        try:
            iters = machine.run_native_chunk(
                loop.nid, spec["chunk_lo"], spec["chunk_hi"])
        except BreakSignal:
            return ("err", tid, "RT-BREAK",
                    f"break inside DOALL loop {spec['label']!r}")
        t_end = time.perf_counter_ns()
        hb.status(tid, PHASE_DONE)
        return ("ok", tid, machine.output,
                (sink.cycles, sink.instructions, sink.loads,
                 sink.stores), iters, (t_start, t_end), meta)
    for _k in range(spec["chunk_lo"], spec["chunk_hi"]):
        if loop.cond is not None:
            machine.eval(loop.cond)
        try:
            machine.exec_stmt(loop.body)
        except ContinueSignal:
            pass
        except BreakSignal:
            return ("err", tid, "RT-BREAK",
                    f"break inside DOALL loop {spec['label']!r}")
        if loop.step is not None:
            machine.eval(loop.step)
        if kill_after is not None and iters == kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        iters += 1
    t_end = time.perf_counter_ns()
    hb.status(tid, PHASE_DONE)
    return ("ok", tid, machine.output,
            (sink.cycles, sink.instructions, sink.loads, sink.stores),
            iters, (t_start, t_end), meta)


def _task_doacross(machine, memory, decls, loop, arena_base, spec, conn,
                   hb):
    """One DOACROSS strip: iterations tid, tid+N, ... of a chunk-1
    dynamic schedule.  Serialized statements wait on / post to 8-byte
    counters in the segment's sync region.

    Unlike DOALL, the strip *streams*: each completed iteration is
    committed by one pipe write — ``("it", tid, k, segments, lines,
    cost_delta, dropped_posts)`` — before the lease words advance.
    Pipe buffers survive the writer's death, so the parent can drain a
    dead stage's committed iterations post-mortem and resume its
    replacement from the exact boundary (``spec["resume_from"]`` local
    iterations are skipped).  The DIRTY word brackets each iteration's
    execution; a death with DIRTY set and no matching committed message
    means serialized writes may be half-applied and the strip is not
    resumable."""
    tid = spec["tid"]
    hb.status(tid, PHASE_BOUND)
    caddr, fmt = _bind_task(machine, memory, decls, arena_base, spec)
    chaos = spec.get("chaos") or {}
    if chaos:
        _apply_chaos(hb, chaos)
    kill_after = chaos.get("kill_after_iter")
    resume = int(spec.get("resume_from", 0))
    lo, step = spec["lo"], spec["step"]
    total, nthreads = spec["total"], spec["nthreads"]
    slots: Dict[int, int] = dict(spec["slots"])
    serial = set(slots)
    timeout = spec["spin_timeout"]
    stmts = loop.body.stmts if isinstance(loop.body, ast.Block) \
        else [loop.body]
    data = memory.data
    sink = machine.cost
    output = machine.output
    counters = {"backoffs": 0}
    local = resume
    t_start = time.perf_counter_ns()
    hb.set_iter(resume)
    hb.set_dirty(0)
    hb.status(tid, PHASE_BODY)
    for k in range(tid + resume * nthreads, total, nthreads):
        hb.set_dirty(1)
        c0 = (sink.cycles, sink.instructions, sink.loads, sink.stores)
        memory.write_scalar(caddr, fmt, lo + k * step)
        if loop.cond is not None:
            machine.eval(loop.cond)
        segments: List[Tuple[int, bool, float]] = []
        posted: Set[int] = set()
        dropped: List[Tuple[int, int]] = []
        n0 = len(output)
        broke = False
        try:
            for stmt in stmts:
                origin = origin_of(stmt)
                is_serial = origin in serial
                if is_serial:
                    _spin_wait(data, slots[origin], k, timeout, counters)
                before = sink.cycles
                try:
                    machine.exec_stmt(stmt)
                finally:
                    segments.append(
                        (origin, is_serial, sink.cycles - before))
                    if is_serial:
                        posted.add(origin)
                        _post_token(data, slots, origin, k, chaos,
                                    dropped)
        except ContinueSignal:
            pass
        except BreakSignal:
            broke = True
        # tokens for serialized statements this iteration skipped
        # (continue / break / short bodies): post them once the
        # iteration is over, in statement order, so later iterations
        # never deadlock waiting on work that will not happen
        for stmt in stmts:
            origin = origin_of(stmt)
            if origin in serial and origin not in posted:
                _spin_wait(data, slots[origin], k, timeout, counters)
                _post_token(data, slots, origin, k, chaos, dropped)
        if broke:
            return ("err", tid, "RT-BREAK",
                    f"break inside DOACROSS loop {spec['label']!r}")
        if loop.step is not None:
            machine.eval(loop.step)
        # commit point: the iteration exists once this write lands
        conn.send(("it", tid, k, segments, output[n0:],
                   (sink.cycles - c0[0], sink.instructions - c0[1],
                    sink.loads - c0[2], sink.stores - c0[3]), dropped))
        # dirty clears *before* ITER advances: a death between the two
        # then reads dirty=0 (resume at drained count) instead of the
        # ambiguous dirty=1 ∧ drained==ITER that means mid-iteration
        hb.set_dirty(0)
        hb.set_iter(local + 1)
        if kill_after is not None and local == kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        local += 1
    c0 = (sink.cycles, sink.instructions, sink.loads, sink.stores)
    if spec["final_cond_tid"] == tid and loop.cond is not None:
        # the failing condition evaluation is this thread's work, just
        # as in the simulated dynamic schedule
        memory.write_scalar(caddr, fmt, lo + total * step)
        machine.eval(loop.cond)
    t_end = time.perf_counter_ns()
    hb.status(tid, PHASE_DONE)
    return ("ok", tid, (t_start, t_end),
            (sink.cycles - c0[0], sink.instructions - c0[1],
             sink.loads - c0[2], sink.stores - c0[3]),
            (sink.cycles, sink.instructions, sink.loads, sink.stores),
            {"backoffs": counters["backoffs"], "resumed": resume})


# ---------------------------------------------------------------------------
# parent side: segment + pool session
# ---------------------------------------------------------------------------

#: sessions with a live (not yet unlinked) segment, for the teardown
#: guards below.  Weak: a collected session already closed via __del__.
_LIVE_SESSIONS: "weakref.WeakSet" = weakref.WeakSet()
_guards_installed = False


def _close_live_sessions() -> None:
    for session in list(_LIVE_SESSIONS):
        try:
            session.close()
        except Exception:
            pass


def _install_teardown_guards() -> None:
    """atexit + SIGTERM guard: an exception or a polite kill between
    segment create and close must not leak ``/dev/shm`` segments.
    Close is owner-pid gated, so the fork-inherited handler is a no-op
    in workers (they must never unlink the parent's segment)."""
    global _guards_installed
    if _guards_installed:
        return
    _guards_installed = True
    atexit.register(_close_live_sessions)
    try:
        previous = signal.getsignal(signal.SIGTERM)

        def _on_sigterm(signum, frame):
            _close_live_sessions()
            if callable(previous):
                previous(signum, frame)
            else:
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                os.kill(os.getpid(), signal.SIGTERM)

        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):
        # not the main thread (embedding host owns signals): the
        # atexit guard still covers orderly interpreter shutdown
        pass


class ProcessSession:
    """Owns the shared segment and the (lazily forked) worker pool for
    one :class:`~repro.runtime.parallel.ParallelRunner`.

    The pool is *supervised*: :meth:`run_tasks` hands dispatch to
    :class:`repro.runtime.supervisor.Supervisor`, which multiplexes
    replies, watches per-worker heartbeat words, respawns dead workers
    (``max_restarts`` per session), re-runs their in-flight work
    (``retry_budget`` re-dispatches per task) and walks the degradation
    ladder when budgets run out."""

    def __init__(self, program: ast.Program, sema, nthreads: int,
                 workers: Optional[int] = None,
                 options: Optional[dict] = None,
                 engine: Optional[str] = None):
        from multiprocessing import shared_memory
        opts = dict(options or {})
        self.nthreads = nthreads
        self.workers = max(1, int(workers or nthreads))
        self.program = program
        self.sema = sema
        #: interpreter tier worker machines run on ("native" dispatches
        #: chunks/stages into compiled entry points; anything else runs
        #: the bare bytecode closures)
        self.engine = engine or "bytecode-bare"
        self.parent_limit = int(opts.get("segment_bytes",
                                         DEFAULT_SEGMENT_BYTES))
        self.arena_bytes = int(opts.get("arena_bytes",
                                        DEFAULT_ARENA_BYTES))
        self.sync_slots = int(opts.get("sync_slots", DEFAULT_SYNC_SLOTS))
        self.worker_timeout = float(opts.get("worker_timeout",
                                             DEFAULT_WORKER_TIMEOUT))
        self.spin_timeout = float(opts.get("spin_timeout",
                                           DEFAULT_SPIN_TIMEOUT))
        self.heartbeat_interval = float(opts.get(
            "heartbeat_interval", DEFAULT_HEARTBEAT_INTERVAL))
        self.heartbeat_timeout = float(opts.get(
            "heartbeat_timeout", DEFAULT_HEARTBEAT_TIMEOUT))
        self.max_restarts = int(opts.get("max_restarts",
                                         DEFAULT_MAX_RESTARTS))
        self.retry_budget = int(opts.get("retry_budget",
                                         DEFAULT_RETRY_BUDGET))
        self.sync_base = self.parent_limit
        self.hb_base = self.sync_base + self.sync_slots * _SLOT_BYTES
        self.arena_base = self.hb_base + self.workers * HB_BYTES
        total = self.arena_base + self.workers * self.arena_bytes
        self._owner_pid = os.getpid()
        name = (f"{SEGMENT_PREFIX}-{os.getpid()}-"
                f"{os.urandom(4).hex()}")
        try:
            self.shm = shared_memory.SharedMemory(name=name, create=True,
                                                  size=total)
        except FileExistsError:  # pragma: no cover - 1-in-2^32 collision
            self.shm = shared_memory.SharedMemory(create=True, size=total)
        try:
            #: the parent machine's memory, handed to ParallelRunner
            self.memory = mem.Memory(buffer=self.shm.buf,
                                     limit=self.parent_limit)
            self.fingerprint = _fingerprint_for(program)
            self._ctx = multiprocessing.get_context("fork")
            self._procs: List = []
            self._conns: List = []
            self._origin_slots: Dict[int, int] = {}
            self.degraded = False
            self.degrade_reason = ""
            self.closed = False
            self.restarts_used = 0
            #: session-global dispatch counter (chaos schedules key on it)
            self.task_seq = 0
            #: process-level chaos injectors (ParallelRunner routes
            #: injectors with ``process_level = True`` here)
            self.chaos: List = []
            #: observability handles, attached by ParallelRunner
            self.tracer = NULL_TRACER
            self.sink = None
            #: lane -> wid of the worker that completed it (last run)
            self.lane_wids: List[int] = []
            #: (wid, name, t_start_ns, t_end_ns, meta) wall-clock samples
            #: collected from task replies, merged into the trace export
            self.worker_samples: List[Tuple[int, str, int, int, dict]] = []
            #: owning :class:`repro.service.SessionPool` (None when the
            #: session belongs to a single runner); a pooled session is
            #: released back instead of closed after each run
            self.pool = None
            #: True when the pool handed out a warm (previously used)
            #: session for the current request
            self.reused = False
        except BaseException:
            try:
                self.shm.close()
            finally:
                self.shm.unlink()
            raise
        _LIVE_SESSIONS.add(self)
        _install_teardown_guards()

    # -- pool lifecycle ---------------------------------------------------
    @property
    def forked(self) -> bool:
        return bool(self._procs)

    def live_wids(self) -> List[int]:
        return [wid for wid, proc in enumerate(self._procs)
                if proc is not None]

    @property
    def live_workers(self) -> int:
        return len(self.live_wids())

    def hb_addr(self, wid: int) -> int:
        return self.hb_base + wid * HB_BYTES

    def hb_read(self, wid: int, offset: int) -> int:
        return _SLOT.unpack_from(self.memory.data,
                                 self.hb_addr(wid) + offset)[0]

    def _hb_zero(self, wid: int) -> None:
        base = self.hb_addr(wid)
        self.memory.data[base:base + HB_BYTES] = b"\0" * HB_BYTES

    def _spawn_worker(self, wid: int):
        """Fork one worker from the warm parent image (the compiled
        bare-variant closures are inherited copy-on-write)."""
        parent_conn, child_conn = self._ctx.Pipe()
        self._hb_zero(wid)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, wid, self.shm, self.program, self.sema,
                  self.fingerprint,
                  self.arena_base + wid * self.arena_bytes,
                  self.arena_base + (wid + 1) * self.arena_bytes,
                  self.hb_addr(wid), self.heartbeat_interval,
                  self.engine),
            daemon=True,
            name=f"repro-mc-{wid}",
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def ensure_pool(self) -> None:
        if self._procs or self.degraded or self.closed:
            return
        # pre-compile the bare variant before forking: children inherit
        # the lowered closures copy-on-write instead of each re-lowering
        from ..interp.bytecode.compiler import BARE, compiler_for_hash
        comp = compiler_for_hash(self.fingerprint, self.program,
                                 self.sema, BARE)
        for fn in self.program.functions():
            comp.function(fn)
            comp.stmt(fn.body)
        if self.engine == "native":
            # lower + compile + dlopen before forking: children inherit
            # the .so handles and the lowering registry copy-on-write,
            # so a warm fork never invokes the C compiler
            from ..interp.native import native_context_for
            try:
                native_context_for(self.program, self.sema)
            except Exception:
                # workers degrade per-machine with a native_diag; the
                # task replies carry the NL-* reason
                pass
        for wid in range(self.workers):
            proc, conn = self._spawn_worker(wid)
            self._procs.append(proc)
            self._conns.append(conn)

    def respawn_worker(self, wid: int) -> None:
        """Replace a dead worker in place; counts against
        ``max_restarts``.  The caller (supervisor) owns diagnostics."""
        self.restarts_used += 1
        proc, conn = self._spawn_worker(wid)
        self._procs[wid] = proc
        self._conns[wid] = conn

    def retire_worker(self, wid: int) -> None:
        """Drop a dead worker without replacement (pool shrink)."""
        self._procs[wid] = None
        self._conns[wid] = None

    def degrade(self, reason: str) -> None:
        """Kill the pool and route every later dispatch to the
        simulated fallback (the segment stays mapped — the parent
        machine keeps running on it)."""
        self.degraded = True
        self.degrade_reason = reason
        self._kill_pool()

    def _kill_pool(self) -> None:
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("exit",))
            except Exception:
                pass
            try:
                conn.close()
            except Exception:
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck in D state
                proc.kill()
                proc.join(timeout=2.0)
        self._procs = []
        self._conns = []

    def close(self) -> None:
        """Shut the pool down and release the segment.  The parent
        memory is detached first (snapshotted into an ordinary
        bytearray) so the outcome stays inspectable after unlink.
        No-op in forked children: only the creating process may unlink
        (the SIGTERM guard is inherited across fork)."""
        if self.closed or os.getpid() != self._owner_pid:
            return
        self.closed = True
        _LIVE_SESSIONS.discard(self)
        try:
            self._kill_pool()
        finally:
            try:
                self.memory.detach()
            except Exception:
                pass
            try:
                self.shm.close()
            except Exception:
                pass
            try:
                self.shm.unlink()
            except Exception:
                pass

    def reset(self) -> None:
        """Return the session to a pristine-segment state while keeping
        the forked worker pool warm (the service's session pool calls
        this between requests).

        The parent region is rewound and zeroed (fresh runs assume a
        zero-filled address space) and the sync slots are cleared; the
        heartbeat region is deliberately left alone — live workers are
        beating into it.  Workers themselves carry no cross-run state
        that survives this: their arenas are reset per task and their
        nid→address maps arrive with each task spec."""
        if self.closed or self.degraded:
            raise ParallelError(
                "cannot reset a closed or degraded session",
                code="RT-SESSION",
            )
        self.memory.reset_region(0)
        zero = b"\0" * (self.hb_base - self.sync_base)
        self.memory.data[self.sync_base:self.hb_base] = zero
        self._origin_slots.clear()
        self.lane_wids = []
        self.worker_samples = []
        self.chaos = []
        self.task_seq = 0
        self.tracer = NULL_TRACER
        self.sink = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch ---------------------------------------------------------
    def run_tasks(self, kind: str, specs: List[dict],
                  retry_safe: bool = False) -> List[tuple]:
        """Send one task per spec (round-robin over live workers) under
        supervision; collect one reply per task.  Worker deaths are
        recovered per the retry/degradation ladder; an unrecoverable
        death kills the pool and raises :class:`WorkerCrash`.
        Worker-level task errors come back as ``("err", code, msg)``
        entries for the caller.  ``retry_safe`` is the DOALL chunk
        retry-safety verdict (:func:`audit_retry_safety`): it gates
        re-execution of chunks that died past their write fence."""
        self.ensure_pool()
        from .supervisor import Supervisor
        return Supervisor(self, kind, specs, retry_safe=retry_safe).run()

    # -- task-spec helpers ------------------------------------------------
    def context_maps(self, machine: Machine) -> Tuple[list, list, list]:
        """(globals, frame, strlits) nid->address bindings currently in
        scope on the parent machine, as pickle-cheap pair lists."""
        globals_map = [(decl.nid, addr) for decl, addr
                       in machine.globals_frame.vars.items()]
        frame_map = []
        if machine.frames:
            frame_map = [(decl.nid, addr) for decl, addr
                         in machine.frames[-1].vars.items()]
        strlits = list(machine._strlit_cache.items())
        return globals_map, frame_map, strlits

    def sync_slots_for(self, origins: List[int]) -> Dict[int, int]:
        """Absolute slot addresses for serialized-statement origins;
        slots are assigned once per origin and zeroed by the caller
        before each loop execution."""
        for origin in origins:
            if origin not in self._origin_slots:
                index = len(self._origin_slots)
                if index >= self.sync_slots:
                    raise ParallelError(
                        f"sync region exhausted ({self.sync_slots} slots)",
                        code="RT-PLAN",
                    )
                self._origin_slots[origin] = \
                    self.sync_base + index * _SLOT_BYTES
        return {origin: self._origin_slots[origin] for origin in origins}

    def zero_slots(self, slots: Dict[int, int]) -> None:
        zero = b"\0" * _SLOT_BYTES
        for addr in slots.values():
            self.memory.data[addr:addr + _SLOT_BYTES] = zero


def _fingerprint_for(program: ast.Program) -> str:
    from ..interp.bytecode.compiler import source_fingerprint
    return source_fingerprint(print_program(program))


# ---------------------------------------------------------------------------
# parent side: controllers
# ---------------------------------------------------------------------------

class _ProcessMixin:
    """Shared plumbing for the process controllers: the capability
    audit (cached per loop), fallback routing, and sink/trace notes."""

    session: ProcessSession

    def _init_process(self, session: ProcessSession, kind_doall: bool):
        self.session = session
        self._kind_doall = kind_doall
        self._audit: Optional[LoopAudit] = None
        self._retry_audit: Optional[List[str]] = None
        self._noted_fallback: Set[str] = set()

    def _retry_safe(self) -> bool:
        """Cached chunk retry-safety verdict for this loop (DOALL only;
        see :func:`audit_retry_safety`)."""
        if self._retry_audit is None:
            runner = self.runner
            priv = getattr(self.tloop, "priv", None)
            # commutative-class accumulators are privatized but NOT
            # idempotent (a replayed chunk re-applies its increments),
            # so they never count as retry-safe
            self._retry_audit = audit_retry_safety(
                self.tloop.loop, runner.tresult.sema,
                set(getattr(priv, "private_sites", None) or ())
                - set(getattr(priv, "commutative_sites", None) or ()),
            )
        return not self._retry_audit

    def _loop_audit(self) -> LoopAudit:
        if self._audit is None:
            runner = self.runner
            self._audit = audit_loop(
                self.tloop.loop, runner.tresult.sema, self._kind_doall,
                runner.nthreads, self.session.workers, runner.chunk,
                set(runner.machine.loop_controllers),
            )
        return self._audit

    def _dispatch_reasons(self, machine: Machine) -> List[str]:
        """Audit verdict plus dispatch-time conditions (pool health,
        injector/watchdog instrumentation, string-literal interning)."""
        runner = self.runner
        audit = self._loop_audit()
        reasons = list(audit.reasons)
        if self.session.degraded:
            reasons.append(MC_DEGRADED)
        if not self._kind_doall and self.session.forked \
                and self.session.live_workers < runner.nthreads:
            # DOACROSS pins stage tid to worker tid mod N; a shrunken
            # pool would stack two stages on one (FIFO) worker and
            # deadlock the token pipeline
            reasons.append(MC_WORKERS)
        if getattr(runner, "fault_injectors", None) \
                or getattr(runner, "watchdog", None) is not None:
            # injected faults and statement watchdogs hook the *parent*
            # machine; running on workers would silently disarm them
            reasons.append(MC_INSTRUMENTED)
        if any(nid not in machine._strlit_cache for nid in audit.strlits):
            reasons.append(MC_STRLIT)
        return reasons

    def _note_fallback(self, loop: ast.LoopStmt,
                       reasons: List[str]) -> None:
        key = ",".join(reasons)
        tracer = self._tracer
        if tracer:
            tracer.metrics.inc("runtime.mc_fallbacks")
        if key in self._noted_fallback:
            return
        self._noted_fallback.add(key)
        sink = getattr(self.runner, "sink", None)
        if sink is not None:
            sink.note(
                "MC-FALLBACK",
                f"loop {loop.label!r} ran on the simulated backend "
                f"({', '.join(reasons)})",
                loop=loop.label, loc=loop.loc, phase="runtime",
            )

    def _merge_sink(self, stats, payload: tuple) -> None:
        cycles, instructions, loads, stores = payload
        sink = stats.sink
        sink.cycles += cycles
        sink.instructions += instructions
        sink.loads += loads
        sink.stores += stores

    def _raise_task_error(self, loop: ast.LoopStmt, reply: tuple) -> None:
        code = reply[1]
        if not code.startswith("RT-"):
            code = "RT-WORKER-FAULT"
        raise ParallelError(
            f"worker task failed in loop {loop.label!r}: "
            f"{reply[1]}: {reply[2]}",
            code=code, loop=loop.label, loc=loop.loc,
        )

    def _finish_accounting(self, machine: Machine, execution,
                           makespan: float) -> None:
        """The simulated controllers' common tail: bandwidth cap, fork
        cost, program-clock advance (bit-identical formulae)."""
        from ..interp.machine import COSTS
        nthreads = self.runner.nthreads
        mem_cycles = sum(
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ) - sum(execution._mem_seen)
        execution._mem_seen = [
            (execution.threads[t].sink.loads
             + execution.threads[t].sink.stores) * COSTS["load"]
            for t in range(nthreads)
        ]
        makespan = max(makespan, sync.bandwidth_makespan(mem_cycles))
        fork = sync.fork_join_cost(nthreads)
        execution.makespan += makespan
        execution.runtime_cycles += fork
        machine.cost.cycles += makespan + fork


class _ProcessDoallController(_ProcessMixin, _DoallController):
    """DOALL over real worker processes: the same static chunking as
    the simulated controller, but chunks execute concurrently against
    the shared segment.  Worker cost sinks are merged per thread and
    the makespan/bandwidth/fork tail replays the simulated arithmetic,
    so modeled cycles stay bit-identical."""

    def __init__(self, runner, tloop, session: ProcessSession):
        super().__init__(runner, tloop)
        self._init_process(session, kind_doall=True)

    def _parallel_exec(self, machine: Machine, loop: ast.For) -> None:
        reasons = self._dispatch_reasons(machine)
        if reasons:
            self._note_fallback(loop, reasons)
            _DoallController._parallel_exec(self, machine, loop)
            return
        execution = self.execution
        execution.executions += 1
        nthreads = self.runner.nthreads
        if loop.init is not None:
            machine.exec_stmt(loop.init)
        control, addr, lo, hi, step, inclusive = _canonical_bounds(
            machine, loop
        )
        if inclusive:
            hi += 1
        total = max(0, -(-(hi - lo) // step))
        tracer = self._tracer
        t0 = machine.cost.cycles
        globals_map, frame_map, strlits = self.session.context_maps(machine)
        tasks = []
        for tid in range(nthreads):
            chunk_lo = tid * total // nthreads
            chunk_hi = (tid + 1) * total // nthreads
            if chunk_lo >= chunk_hi:
                continue
            tasks.append({
                "label": loop.label, "tid": tid, "nthreads": nthreads,
                "chunk_lo": chunk_lo, "chunk_hi": chunk_hi,
                "lo": lo, "step": step, "control_nid": control.nid,
                "globals": globals_map, "frame": frame_map,
                "strlits": strlits,
            })
        replies = self.session.run_tasks(
            "doall", tasks, retry_safe=self._retry_safe()
        ) if tasks else []
        for reply in replies:
            if reply[0] != "ok":
                self._raise_task_error(loop, reply)
        lane_wids = self.session.lane_wids
        spans = [0.0] * nthreads
        for lane, reply in enumerate(replies):
            _ok, tid, lines, sink_payload, iters, wall = reply
            stats = execution.threads[tid]
            stats.sync_cycles += sync.STATIC_CHUNK_SETUP
            self._merge_sink(stats, sink_payload)
            spans[tid] = sink_payload[0]
            stats.iterations += iters
            execution.iterations += iters
            machine.output.extend(lines)
            wid = lane_wids[lane] if lane < len(lane_wids) \
                else lane % self.session.workers
            self.session.worker_samples.append(
                (wid, "doall-chunk", wall[0], wall[1],
                 {"loop": loop.label, "tid": tid, "iterations": iters})
            )
            if tracer:
                tracer.event("doall-chunk", tid, t0, dur=spans[tid],
                             loop=loop.label,
                             iterations=stats.iterations)
        makespan = max(spans) if spans else 0.0
        self._finish_accounting(machine, execution, makespan)
        machine.memory.write_scalar(addr, control.ctype.fmt,
                                    lo + total * step)


class _ProcessDoacrossController(_ProcessMixin, _DoacrossController):
    """DOACROSS over real worker processes: iteration k runs on worker
    k mod N; serialized statements synchronize through shared-segment
    post/wait counters instead of the simulated recurrence's ledger.
    Workers report per-iteration segment timings so the parent replays
    the simulated pipelining recurrence for bit-identical cycles."""

    def __init__(self, runner, tloop, session: ProcessSession):
        super().__init__(runner, tloop)
        self._init_process(session, kind_doall=False)

    def _parallel_exec(self, machine: Machine, loop: ast.LoopStmt) -> None:
        reasons = self._dispatch_reasons(machine)
        if reasons:
            self._note_fallback(loop, reasons)
            _DoacrossController._parallel_exec(self, machine, loop)
            return
        execution = self.execution
        execution.executions += 1
        runner = self.runner
        nthreads = runner.nthreads
        session = self.session
        tracer = self._tracer
        t0 = machine.cost.cycles
        if loop.init is not None:
            machine.exec_stmt(loop.init)
        control, addr, lo, hi, step, inclusive = _canonical_bounds(
            machine, loop
        )
        if inclusive:
            hi += 1
        total = max(0, -(-(hi - lo) // step))
        origins = sorted(self.tloop.serial_stmt_origins)
        slots = session.sync_slots_for(origins)
        session.zero_slots(slots)
        globals_map, frame_map, strlits = session.context_maps(machine)
        tasks = []
        for tid in range(nthreads):
            if tid >= total and tid != total % nthreads:
                continue
            tasks.append({
                "label": loop.label, "tid": tid, "nthreads": nthreads,
                "total": total, "lo": lo, "step": step,
                "control_nid": control.nid,
                "final_cond_tid": total % nthreads,
                "slots": list(slots.items()),
                "spin_timeout": session.spin_timeout,
                "globals": globals_map, "frame": frame_map,
                "strlits": strlits,
            })
        replies = session.run_tasks("doacross", tasks) if tasks else []
        for reply in replies:
            if reply[0] != "ok":
                self._raise_task_error(loop, reply)
        # merge busy work + output (program order = ascending k)
        lane_wids = session.lane_wids
        per_iter: Dict[int, tuple] = {}
        for lane, reply in enumerate(replies):
            _ok, tid, lines, sink_payload, iters, wall = reply
            stats = execution.threads[tid]
            self._merge_sink(stats, sink_payload)
            cursor = 0
            for k, segments, n_lines in iters:
                per_iter[k] = (tid, segments,
                               lines[cursor:cursor + n_lines])
                cursor += n_lines
            wid = lane_wids[lane] if lane < len(lane_wids) \
                else lane % session.workers
            session.worker_samples.append(
                (wid, "doacross-strip", wall[0], wall[1],
                 {"loop": loop.label, "tid": tid,
                  "iterations": len(iters)})
            )
        # replay the simulated pipelining recurrence over the reported
        # segments, in global iteration order
        thread_free = [0.0] * nthreads
        sync_done: Dict[int, float] = {}
        for k in range(total):
            tid, segments, lines = per_iter[k]
            stats = execution.threads[tid]
            stats.sync_cycles += sync.DYNAMIC_DEQUEUE
            stats.iterations += 1
            execution.iterations += 1
            machine.output.extend(lines)
            clock = thread_free[tid] + sync.DYNAMIC_DEQUEUE
            iter_start = clock
            for origin, is_serial, cycles in segments:
                if is_serial:
                    token = sync_done.get(origin, 0.0)
                    if token > clock:
                        stats.wait_cycles += token - clock
                        if tracer:
                            tracer.event(
                                "token-wait", tid, t0 + clock,
                                dur=token - clock, loop=loop.label,
                                origin=origin, k=k,
                            )
                            tracer.metrics.inc("runtime.token_waits")
                            tracer.metrics.inc(
                                "runtime.token_wait_cycles",
                                token - clock,
                            )
                        clock = token
                    stats.sync_cycles += (
                        sync.POST_COST + sync.WAIT_CHECK_COST
                    )
                    clock += cycles
                    sync_done[origin] = clock
                    if tracer:
                        tracer.event("token-post", tid, t0 + clock,
                                     loop=loop.label, origin=origin, k=k)
                        tracer.metrics.inc("runtime.token_posts")
                else:
                    clock += cycles
            if tracer:
                tracer.event("iteration", tid, t0 + iter_start,
                             dur=clock - iter_start, loop=loop.label, k=k)
            thread_free[tid] = clock
        makespan = max(thread_free) if thread_free else 0.0
        self._finish_accounting(machine, execution, makespan)
        machine.memory.write_scalar(addr, control.ctype.fmt,
                                    lo + total * step)
