"""Deterministic fault injection for the parallel runtime.

The robustness layer (permissive mode, watchdog, race recovery) is only
trustworthy if it is exercised against actual failures.  This module
provides seedable injectors that corrupt the runtime's own mechanisms —
the quantities the expansion transform's correctness *depends on* — so
the test suite can assert the contract:

    every injected fault is either **detected** (a structured
    diagnostic is recorded, strict mode raises) or **recovered** (the
    loop re-executes sequentially and program output is bit-identical
    to the untransformed baseline).

Injectors:

* :class:`SpanCorruptor` — garbles values stored into fat-pointer
  ``span`` fields, collapsing or skewing the per-thread copy stride.
  Privatized structures are reused by every iteration (that is why
  they were privatized), so a collapsed stride makes threads collide
  on the same bytes and the race checker fires.
* :class:`CopyIndexSkew` — perturbs reads of ``__tid`` inside parallel
  regions, redirecting a fraction of accesses into a neighbour
  thread's copy.
* :class:`SyncTokenDropper` — drops DOACROSS post/wait tokens in
  flight; the runtime cross-checks observed tokens against the
  producer-side ledger and repairs (permissive) or raises (strict).
* :class:`ThreadAborter` — kills one virtual thread mid-chunk with a
  :class:`ThreadAbortFault`, modeling an asynchronous thread death.

Each injector draws from its own ``random.Random(seed)``, so a given
(seed, program) pair replays the exact same fault schedule.

Injectors hook the machine three different ways, dictated by how the
interpreter binds its internals: ``exec_stmt`` and ``store`` are looked
up as instance attributes on every call, so wrapping the attribute
works; expression evaluation goes through ``_eval_dispatch``, a dict of
bound methods frozen at ``__init__``, so :class:`CopyIndexSkew` must
replace the dict entry instead.

The bytecode engine compiles those dispatch surfaces away, so its
machine exposes dedicated hook points instead (see
:class:`repro.interp.bytecode.BytecodeMachine`): ``_stmt_hook`` (runs
before each statement, like wrapping ``exec_stmt``), ``_tid_hook``
(every ``__tid`` read, like replacing the Ident dispatch entry) and
``_store_taps`` (per-site store perturbation, like wrapping ``store``).
Each ``_wire`` branches on ``machine.engine``; chaining order matches
the walker's wrapper semantics (latest install sees the statement
first / perturbs the value last).
"""

from __future__ import annotations

import random
from typing import Set

from ..frontend import ast
from ..interp.machine import InterpError
from ..transform.promote import SPAN_FIELD


class ThreadAbortFault(InterpError):
    """A virtual thread died mid-chunk (injected)."""

    default_code = "FAULT-ABORT"


class FaultInjector:
    """Base injector: arming, seeding, bookkeeping, sink reporting."""

    code = "FAULT-GENERIC"

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)
        self.seed = seed
        self.armed = True
        self.fired = 0
        self.runner = None

    # -- wiring (called by ParallelRunner) ---------------------------------
    def install(self, runner) -> None:
        self.runner = runner
        self._wire(runner)

    def _wire(self, runner) -> None:  # pragma: no cover - overridden
        pass

    def suspend(self) -> None:
        """Disarm during sequential recovery (the fault hit the
        parallel attempt; the fallback models the untransformed path)."""
        self.armed = False

    def resume(self) -> None:
        self.armed = True

    # -- runtime consultation points ---------------------------------------
    def at(self, point: str, value, **ctx):
        """Perturb ``value`` at a named runtime point; default pass."""
        return value

    # -- helpers ------------------------------------------------------------
    def _in_region(self) -> bool:
        checker = getattr(self.runner, "checker", None)
        if checker is not None:
            return checker.enabled
        return True

    def _record(self, message: str, **data) -> None:
        """Count a fire; report the first occurrence to the sink."""
        self.fired += 1
        if self.fired > 1 or self.runner is None:
            return
        sink = getattr(self.runner, "sink", None)
        if sink is not None:
            sink.note(self.code, message, phase="fault", data=data)


class SpanCorruptor(FaultInjector):
    """Corrupt stores into fat-pointer ``span`` fields.

    ``factor=0`` (default) collapses every per-thread stride to zero,
    so all threads redirect into copy 0 of each expanded structure —
    the original shared-memory conflict the transform was supposed to
    remove.  Sequential execution is immune (thread 0's offset is
    ``0 * span`` regardless), so permissive recovery stays correct.
    """

    code = "FAULT-SPAN"

    def __init__(self, seed: int = 0, factor: int = 0):
        super().__init__(seed)
        self.factor = factor
        #: Assign nids whose target is a ``.span`` member
        self.sites: Set[int] = set()

    def _wire(self, runner) -> None:
        program = runner.tresult.program
        for fn in program.functions():
            for node in fn.body.walk():
                if isinstance(node, ast.Assign) and \
                        isinstance(node.target, ast.Member) and \
                        node.target.name == SPAN_FIELD:
                    self.sites.add(node.nid)
        machine = runner.machine
        if machine.engine != "ast":
            # bytecode tier: per-site store taps.  The compiled assign
            # passes the about-to-be-stored value through the tap; the
            # assignment expression still yields the uncorrupted value,
            # exactly like wrapping machine.store on the walker.
            taps = machine._store_taps
            if taps is None:
                taps = machine._store_taps = {}

            def make_tap(site, prev):
                def tap(value):
                    if self.armed:
                        corrupted = int(value) * self.factor
                        self._record(
                            f"span store at site {site} corrupted "
                            f"({int(value)} -> {corrupted})",
                            site=site, original=int(value),
                            corrupted=corrupted,
                        )
                        value = corrupted
                    # an earlier-installed injector's tap runs after,
                    # mirroring the walker's wrapper nesting
                    return value if prev is None else prev(value)
                return tap

            for site in self.sites:
                taps[site] = make_tap(site, taps.get(site))
            return
        original = machine.store

        def store(addr, ctype, value, site, cheap=False):
            if self.armed and site in self.sites:
                corrupted = int(value) * self.factor
                self._record(
                    f"span store at site {site} corrupted "
                    f"({int(value)} -> {corrupted})",
                    site=site, original=int(value), corrupted=corrupted,
                )
                value = corrupted
            original(addr, ctype, value, site, cheap=cheap)

        machine.store = store


class CopyIndexSkew(FaultInjector):
    """Skew a fraction of in-region ``__tid`` reads to the next thread.

    Redirected copy selection (``base + __tid * span``) then mixes two
    threads' accesses into one copy; because privatized structures are
    rewritten by every iteration, the overlap is byte-identical and the
    race checker detects it.
    """

    code = "FAULT-SKEW"

    def __init__(self, seed: int = 0, rate: float = 0.5):
        super().__init__(seed)
        self.rate = rate

    def _wire(self, runner) -> None:
        machine = runner.machine
        if machine.engine != "ast":
            # bytecode tier: the compiled __tid read calls _tid_hook.
            # The hook only ever sees tid identifiers, so the rng draw
            # sequence matches the walker wrapper (which guards on
            # expr.decl before drawing).
            prev = machine._tid_hook

            def tid_hook(expr, value):
                if prev is not None:
                    value = prev(expr, value)
                if self.armed and machine.nthreads > 1 \
                        and self._in_region() \
                        and self.rng.random() < self.rate:
                    skewed = (int(value) + 1) % machine.nthreads
                    self._record(
                        f"__tid read skewed ({int(value)} -> {skewed})",
                        site=expr.nid,
                    )
                    return skewed
                return value

            machine._tid_hook = tid_hook
            return
        original = machine._eval_dispatch[ast.Ident]
        tid_decl = machine._tid_decl

        def eval_ident(expr):
            value = original(expr)
            if self.armed and expr.decl is tid_decl \
                    and machine.nthreads > 1 and self._in_region() \
                    and self.rng.random() < self.rate:
                skewed = (int(value) + 1) % machine.nthreads
                self._record(
                    f"__tid read skewed ({int(value)} -> {skewed})",
                    site=expr.nid,
                )
                return skewed
            return value

        machine._eval_dispatch[ast.Ident] = eval_ident


class SyncTokenDropper(FaultInjector):
    """Drop DOACROSS post/wait tokens in flight.

    The DOACROSS controller consults :meth:`at` with point
    ``"doacross-wait"`` before honoring a token; a dropped token reads
    as 0.0 (never posted).  The runtime's ledger cross-check turns the
    drop into an ``RT-SYNC-DROP`` diagnostic.
    """

    code = "FAULT-SYNC-DROP"

    def __init__(self, seed: int = 0, rate: float = 1.0):
        super().__init__(seed)
        self.rate = rate

    def at(self, point: str, value, **ctx):
        if point != "doacross-wait" or not self.armed:
            return value
        if value and self.rng.random() < self.rate:
            self._record(
                f"dropped sync token for statement {ctx.get('origin')} "
                f"at iteration {ctx.get('k')}",
                origin=ctx.get("origin"), iteration=ctx.get("k"),
            )
            return 0.0
        return value


class ThreadAborter(FaultInjector):
    """Kill one virtual thread after N in-region statements.

    Models an asynchronous thread death mid-chunk; the loop's partial
    effects are rolled back by the permissive recovery checkpoint.
    Fires exactly once per injector instance.
    """

    code = "FAULT-ABORT"

    def __init__(self, seed: int = 0, target_tid: int = 1,
                 after: int = 10):
        super().__init__(seed)
        self.target_tid = target_tid
        self.after = after
        self.count = 0

    def _wire(self, runner) -> None:
        machine = runner.machine
        if machine.engine != "ast":
            # bytecode tier: _stmt_hook runs first in every compiled
            # statement's prologue, like the walker wrapper which runs
            # before the original exec_stmt body
            prev = machine._stmt_hook

            def stmt_hook(stmt):
                if self.armed and machine.tid == self.target_tid \
                        and self._in_region():
                    self.count += 1
                    if self.count == self.after:
                        self._record(
                            f"virtual thread {machine.tid} aborted after "
                            f"{self.after} statements",
                            tid=machine.tid, after=self.after,
                        )
                        raise ThreadAbortFault(
                            f"virtual thread {machine.tid} aborted "
                            "mid-chunk (injected)", stmt,
                        )
                if prev is not None:
                    prev(stmt)

            machine._stmt_hook = stmt_hook
            return
        original = machine.exec_stmt

        def exec_stmt(stmt):
            if self.armed and machine.tid == self.target_tid \
                    and self._in_region():
                self.count += 1
                if self.count == self.after:
                    self._record(
                        f"virtual thread {machine.tid} aborted after "
                        f"{self.after} statements",
                        tid=machine.tid, after=self.after,
                    )
                    raise ThreadAbortFault(
                        f"virtual thread {machine.tid} aborted mid-chunk "
                        "(injected)", stmt,
                    )
            original(stmt)

        machine.exec_stmt = exec_stmt


# ---------------------------------------------------------------------------
# process-level chaos (multi-core backend)
# ---------------------------------------------------------------------------

class ProcessChaosInjector(FaultInjector):
    """Base class for chaos that targets the *process* backend.

    These are not machine instrumentation: they do not hook the parent
    interpreter, so arming one does **not** route loops through the
    simulated controllers (``MC-INSTRUMENTED``) — the whole point is to
    fail the real worker pool and watch the supervisor heal it.
    ``ParallelRunner`` routes them to ``ProcessSession.chaos``; the
    supervisor consults :meth:`plan` once per task at its *first*
    dispatch (retries run chaos-free, so an injected failure cannot
    chase its own recovery forever).

    ``task`` selects which dispatch(es) to hit by the session-global
    task sequence number: ``None`` = every task, an int = that one
    task, a list = those tasks.
    """

    process_level = True

    def __init__(self, seed: int = 0, task=0):
        super().__init__(seed)
        self.task = task

    def _hits(self, index: int) -> bool:
        if not self.armed:
            return False
        if self.task is None:
            return True
        if isinstance(self.task, (list, tuple, set)):
            return index in self.task
        return index == int(self.task)

    def plan(self, kind: str, index: int, wid: int, lane, spec) -> dict:
        """Return chaos directives (merged into ``spec["chaos"]``) for
        this dispatch, or an empty dict."""
        return {}


class WorkerKiller(ProcessChaosInjector):
    """SIGKILL a worker at a chosen chunk boundary.

    ``after_iter=None`` kills the worker at dispatch time — before the
    task lands, the cleanest chunk boundary there is.  ``after_iter=n``
    makes the worker SIGKILL *itself* right after completing local
    iteration ``n`` (for DOACROSS that is a committed-iteration
    boundary, exercising the drain-and-resume lease path; for DOALL it
    is past the write fence, exercising the retry-safety audit)."""

    code = "FAULT-KILL"

    def __init__(self, seed: int = 0, task=0, after_iter=None):
        super().__init__(seed, task)
        self.after_iter = after_iter

    def plan(self, kind, index, wid, lane, spec) -> dict:
        if not self._hits(index):
            return {}
        self.fired += 1
        if self.after_iter is None:
            return {"kill_at_dispatch": True}
        return {"kill_after_iter": int(self.after_iter)}


class HeartbeatStaller(ProcessChaosInjector):
    """Freeze a worker's heartbeat without killing it.

    The beat thread stops bumping BEAT for ``duration`` seconds
    (negative = forever); ``hold`` keeps the task artificially in
    flight so the supervisor's staleness check deterministically
    observes the frozen beat and revokes the worker's lease."""

    code = "FAULT-HB-STALL"

    def __init__(self, seed: int = 0, task=0, duration: float = -1.0,
                 hold: float = 1.0):
        super().__init__(seed, task)
        self.duration = duration
        self.hold = hold

    def plan(self, kind, index, wid, lane, spec) -> dict:
        if not self._hits(index):
            return {}
        self.fired += 1
        return {"stall_heartbeat": self.duration, "hold": self.hold}


class TokenPostDropper(ProcessChaosInjector):
    """Swallow DOACROSS sync-token posts inside the worker.

    The worker records each dropped post in the iteration's committed
    message instead of writing the slot; the supervisor re-issues the
    token (``MC-TOKEN-REISSUE``) so downstream stages unblock.  ``ks``
    limits drops to those iteration numbers; otherwise ``rate`` (with
    the injector seed) draws deterministically per (origin, k)."""

    code = "FAULT-POST-DROP"

    def __init__(self, seed: int = 0, task=None, ks=None,
                 rate: float = 1.0):
        super().__init__(seed, task)
        self.ks = list(ks) if ks is not None else None
        self.rate = rate

    def plan(self, kind, index, wid, lane, spec) -> dict:
        if kind != "doacross" or not self._hits(index):
            return {}
        self.fired += 1
        directive = {"seed": self.seed, "rate": self.rate}
        if self.ks is not None:
            directive["ks"] = self.ks
        return {"drop_posts": directive}


class TokenPostDelayer(ProcessChaosInjector):
    """Delay DOACROSS sync-token posts by ``seconds`` of wall time.

    Modeled cycles are unaffected (the cost model never sees wall
    time), so output and metrics stay bit-identical — this exercises
    the spin-wait backoff path and the supervisor's patience."""

    code = "FAULT-POST-DELAY"

    def __init__(self, seed: int = 0, task=None, ks=None,
                 rate: float = 1.0, seconds: float = 0.005):
        super().__init__(seed, task)
        self.ks = list(ks) if ks is not None else None
        self.rate = rate
        self.seconds = seconds

    def plan(self, kind, index, wid, lane, spec) -> dict:
        if kind != "doacross" or not self._hits(index):
            return {}
        self.fired += 1
        directive = {"seed": self.seed, "rate": self.rate,
                     "seconds": self.seconds}
        if self.ks is not None:
            directive["ks"] = self.ks
        return {"delay_posts": directive}


def parse_chaos_spec(spec: str, seed: int = 0) -> ProcessChaosInjector:
    """Build a chaos injector from a CLI ``--chaos`` spec string.

    Grammar: ``name[:key=value,key=value...]`` with names ``kill``,
    ``stall``, ``drop``, ``delay``.  Examples::

        kill                      SIGKILL worker at dispatch of task 0
        kill:task=2,after-iter=1  worker of task 2 dies after local it 1
        stall:task=1,hold=0.5     freeze task 1's heartbeat
        drop:rate=0.5             drop half of all sync-token posts
        delay:seconds=0.01        delay every post by 10ms
    """
    name, _, rest = spec.partition(":")
    kwargs: dict = {}
    if rest:
        for part in rest.split(","):
            key, _, value = part.partition("=")
            key = key.strip().replace("-", "_")
            value = value.strip()
            if key == "ks":
                kwargs[key] = [int(v) for v in value.split("+")]
            elif key == "task":
                kwargs[key] = None if value == "any" else int(value)
            elif key in ("after_iter",):
                kwargs[key] = int(value)
            else:
                kwargs[key] = float(value)
    kwargs.setdefault("seed", seed)
    makers = {
        "kill": WorkerKiller,
        "stall": HeartbeatStaller,
        "drop": TokenPostDropper,
        "delay": TokenPostDelayer,
    }
    if name not in makers:
        raise ValueError(
            f"unknown chaos spec {name!r} "
            f"(expected one of {sorted(makers)})")
    return makers[name](**kwargs)


__all__ = [
    "FaultInjector", "SpanCorruptor", "CopyIndexSkew",
    "SyncTokenDropper", "ThreadAborter", "ThreadAbortFault",
    "ProcessChaosInjector", "WorkerKiller", "HeartbeatStaller",
    "TokenPostDropper", "TokenPostDelayer", "parse_chaos_spec",
]
