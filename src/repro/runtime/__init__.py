"""Simulated parallel runtime: schedulers, sync model, statistics."""

from .parallel import (
    MachineSnapshot, ParallelError, ParallelRunner, RaceError,
    run_parallel,
)
from .stats import (
    LoopExecution, ParallelOutcome, RecoveryEvent, ThreadStats,
)
from .faults import (
    CopyIndexSkew, FaultInjector, HeartbeatStaller, ProcessChaosInjector,
    SpanCorruptor, SyncTokenDropper, ThreadAbortFault, ThreadAborter,
    TokenPostDelayer, TokenPostDropper, WorkerKiller, parse_chaos_spec,
)
from .multicore import (
    LoopAudit, ProcessSession, WorkerCrash, audit_loop,
    audit_retry_safety, process_backend_available,
)
from .supervisor import Supervisor
from . import sync

__all__ = [
    "run_parallel", "ParallelRunner", "ParallelError", "RaceError",
    "ParallelOutcome", "LoopExecution", "ThreadStats", "sync",
    "MachineSnapshot", "RecoveryEvent",
    "FaultInjector", "SpanCorruptor", "CopyIndexSkew",
    "SyncTokenDropper", "ThreadAborter", "ThreadAbortFault",
    "ProcessChaosInjector", "WorkerKiller", "HeartbeatStaller",
    "TokenPostDropper", "TokenPostDelayer", "parse_chaos_spec",
    "process_backend_available", "ProcessSession", "WorkerCrash",
    "LoopAudit", "audit_loop", "audit_retry_safety", "Supervisor",
]
