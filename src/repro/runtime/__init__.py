"""Simulated parallel runtime: schedulers, sync model, statistics."""

from .parallel import (
    ParallelError, ParallelRunner, RaceError, run_parallel,
)
from .stats import LoopExecution, ParallelOutcome, ThreadStats
from . import sync

__all__ = [
    "run_parallel", "ParallelRunner", "ParallelError", "RaceError",
    "ParallelOutcome", "LoopExecution", "ThreadStats", "sync",
]
