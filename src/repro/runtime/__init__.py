"""Simulated parallel runtime: schedulers, sync model, statistics."""

from .parallel import (
    MachineSnapshot, ParallelError, ParallelRunner, RaceError,
    run_parallel,
)
from .stats import (
    LoopExecution, ParallelOutcome, RecoveryEvent, ThreadStats,
)
from .faults import (
    CopyIndexSkew, FaultInjector, SpanCorruptor, SyncTokenDropper,
    ThreadAbortFault, ThreadAborter,
)
from .multicore import (
    LoopAudit, ProcessSession, WorkerCrash, audit_loop,
    process_backend_available,
)
from . import sync

__all__ = [
    "run_parallel", "ParallelRunner", "ParallelError", "RaceError",
    "ParallelOutcome", "LoopExecution", "ThreadStats", "sync",
    "MachineSnapshot", "RecoveryEvent",
    "FaultInjector", "SpanCorruptor", "CopyIndexSkew",
    "SyncTokenDropper", "ThreadAborter", "ThreadAbortFault",
    "process_backend_available", "ProcessSession", "WorkerCrash",
    "LoopAudit", "audit_loop",
]
