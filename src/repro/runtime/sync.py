"""Scheduling and synchronization cost constants.

The paper runs transformed loops through GOMP: DOALL loops with static
chunk scheduling, DOACROSS loops with dynamic scheduling at chunk size
one, plus post/wait-style cross-iteration synchronization.  These
constants model those runtime-library costs in cycles; they are the
"calls to the Gomp library" overhead visible in the paper's single-core
bars (Figure 11) and the ``do_wait``/``cpu_relax`` time in Figure 12.

Rough calibration against GOMP on the paper's Opteron class hardware:
a parallel-region fork/join is a few microseconds (thousands of
cycles), a dynamic-schedule dequeue is a CAS plus cache traffic
(tens to ~100 cycles), and a post/wait handshake is a flag write/read
plus fence.
"""

#: one-time cost of entering/leaving a parallel region (fork + join)
FORK_JOIN_BASE = 800.0
#: additional fork/join cost per participating thread
FORK_JOIN_PER_THREAD = 300.0

#: dynamic-scheduling dequeue cost per chunk (DOACROSS, chunk size 1)
DYNAMIC_DEQUEUE = 80.0

#: static-scheduling per-chunk setup (DOALL)
STATIC_CHUNK_SETUP = 40.0

#: cross-iteration synchronization: one post + one wait handshake
POST_COST = 30.0
WAIT_CHECK_COST = 30.0


def fork_join_cost(nthreads: int) -> float:
    """Cycles to fork and join a team of ``nthreads`` threads."""
    if nthreads <= 1:
        return FORK_JOIN_BASE * 0.5  # degenerate region still calls GOMP
    return FORK_JOIN_BASE + FORK_JOIN_PER_THREAD * nthreads


#: shared-memory-system concurrency: how many threads' worth of
#: load/store traffic the memory system sustains per cycle.  This is
#: what plateaus memory-bound loops (the paper reports 470.lbm hitting
#: the bandwidth wall and dijkstra/mpeg2-decoder suffering cache misses
#: past 4 cores on their dual-socket Opteron).
MEMORY_PORTS = 4.0


def bandwidth_makespan(total_mem_cycles: float) -> float:
    """Lower bound on loop makespan from memory traffic alone."""
    return total_mem_cycles / MEMORY_PORTS
