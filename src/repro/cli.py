"""Command-line interface: ``python -m repro <command> file.c``.

Commands mirror the library's workflow so the toolchain is usable
without writing Python:

* ``run``      — interpret a MiniC program sequentially
* ``profile``  — profile a candidate loop; print the programmer-
  verification report (optionally save the graph as JSON)
* ``expand``   — run the expansion pipeline; print the transformed
  source and a summary
* ``parallel`` — expand + run on N simulated threads; print speedups
* ``lint``     — expand, then statically audit the transformed IR
  (span discipline, allocation scaling, privatization races); findings
  are structured ``LINT-*`` diagnostics
* ``bench``    — run one benchmark (or ``all``) through the harness

Every subcommand accepts ``--trace out.json`` (Chrome trace-event
JSON: compile-phase spans + per-thread runtime timeline + metrics,
viewable in chrome://tracing or Perfetto) and ``--trace-summary``
(human-readable phase/event/metric tables on stderr).

The §3.4 optimizations are individually addressable: ``--no-opt-NAME``
disables one (``selective-promotion``, ``trivial-span-elim``,
``constant-spans``, ``hoisting``, ``licm``), ``--opt NAME`` re-enables
one, and the blunt ``--no-optimize`` (kept for compatibility) disables
them all.

Examples::

    python -m repro run program.c
    python -m repro profile program.c --loop L --save-ddg graph.json
    python -m repro expand program.c --loop L --no-opt-constant-spans
    python -m repro parallel program.c --loop L --threads 8 --trace t.json
    python -m repro parallel program.c --loop L --backend process --workers 4
    python -m repro lint program.c --fail-on-warning
    python -m repro lint --bench all --fail-on-warning
    python -m repro bench dijkstra --json BENCH_run.json
    python -m repro bench all --backend process --json --out baselines/
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

#: §3.4 optimization names as CLI flags (dashes) — field names in
#: :class:`repro.transform.OptFlags` use underscores
OPT_NAMES = (
    "selective-promotion", "trivial-span-elim", "constant-spans",
    "hoisting", "licm",
)


def _load(path: str, tracer=None):
    from .frontend import parse_and_analyze

    with open(path) as fh:
        source = fh.read()
    return parse_and_analyze(source, tracer=tracer)


def _resolve_engine_cli(args) -> str:
    """Resolve ``--engine`` / ``$REPRO_ENGINE`` up front with CLI
    diagnostics instead of a mid-run traceback.

    argparse already refuses unknown ``--engine`` values (and its
    error lists the valid engines), so the failure mode left is a
    bogus environment variable — refuse it with a structured
    ``CLI-ENGINE`` error.  A ``native`` request on a host that cannot
    compile/load the tier degrades to ``bytecode-bare`` with an
    explicit ``NL-UNAVAILABLE`` warning: loud, never silent.
    """
    from .interp import ENGINE_ENV, resolve_engine

    try:
        eng = resolve_engine(getattr(args, "engine", None))
    except ValueError as exc:
        print(f"error[CLI-ENGINE]: {exc} (check --engine / ${ENGINE_ENV})",
              file=sys.stderr)
        raise SystemExit(2)
    if eng == "native":
        from .interp.native import native_backend_available

        ok, why = native_backend_available()
        if not ok:
            print(f"warning[NL-UNAVAILABLE]: native tier unavailable "
                  f"({why}); falling back to bytecode-bare",
                  file=sys.stderr)
            eng = "bytecode-bare"
    return eng


# -- observability plumbing -------------------------------------------------

def _make_tracer(args):
    """A real tracer when the user asked for any trace output, the
    no-op singleton otherwise."""
    from .obs import NULL_TRACER, Tracer

    if getattr(args, "trace", None) or getattr(args, "trace_summary",
                                               False):
        return Tracer()
    return NULL_TRACER


def _finish_trace(args, tracer) -> None:
    if not tracer:
        return
    from .obs import trace_summary, write_chrome_trace

    if args.trace:
        write_chrome_trace(tracer, args.trace)
        print(f"[trace written to {args.trace}]", file=sys.stderr)
    if args.trace_summary:
        print(trace_summary(tracer), file=sys.stderr)


def _opt_flags(args):
    """Build :class:`OptFlags` from the granular CLI switches."""
    from .transform import OptFlags

    if args.no_optimize:
        # parsed for one more release; the granular switches are the
        # supported surface
        print(
            "warning[CLI-DEPRECATED]: --no-optimize is deprecated; use "
            "the granular --no-opt-<name> switches (or --no-opt-"
            + " --no-opt-".join(OPT_NAMES) + " for all of them)",
            file=sys.stderr,
        )
    base_on = not args.no_optimize
    enabled = {name.replace("-", "_") for name in args.opt}
    kwargs = {}
    for name in OPT_NAMES:
        field = name.replace("-", "_")
        on = base_on and not getattr(args, f"no_opt_{field}")
        kwargs[field] = on or field in enabled
    return OptFlags(**kwargs)


# -- subcommands ------------------------------------------------------------

def _cmd_run(args) -> int:
    from .interp import Machine

    tracer = _make_tracer(args)
    eng = _resolve_engine_cli(args)
    try:
        program, sema = _load(args.file, tracer=tracer)
        machine = Machine(program, sema, engine=eng)
        with tracer.phase("run", cat="runtime"):
            code = machine.run(args.entry)
    finally:
        _finish_trace(args, tracer)
    for line in machine.output:
        print(line)
    print(
        f"[exit {code}; {machine.cost.cycles:,.0f} cycles, "
        f"{machine.cost.instructions:,} instructions, "
        f"{machine.memory.peak_footprint():,} bytes peak]",
        file=sys.stderr,
    )
    return code


def _cmd_profile(args) -> int:
    from .analysis import profile_loop
    from .analysis.ddg_io import save_profile, verification_report
    from .frontend import ast

    tracer = _make_tracer(args)
    eng = _resolve_engine_cli(args)
    try:
        program, sema = _load(args.file, tracer=tracer)
        loop = ast.find_loop(program, args.loop)
        with tracer.phase("profile", loop=args.loop):
            profile = profile_loop(program, sema, loop, entry=args.entry,
                                   engine=eng)
    finally:
        _finish_trace(args, tracer)
    print(verification_report(program, profile))
    if args.save_ddg:
        save_profile(profile, args.save_ddg)
        print(f"\n[dependence graph saved to {args.save_ddg}]",
              file=sys.stderr)
    return 0


def _render_diagnostics(sink) -> None:
    """Print accumulated structured diagnostics to stderr."""
    for diag in sink:
        print(diag.render(), file=sys.stderr)


def _transform(args, sink=None, tracer=None, flags=None):
    from .frontend import ast
    from .transform import expand_for_threads

    program, sema = _load(args.file, tracer=tracer)
    for label in args.loop:
        try:
            ast.find_loop(program, label)
        except KeyError:
            if args.strict:
                print(f"error[PIPE-NO-LOOP]: no loop labeled {label!r} "
                      f"in {args.file}", file=sys.stderr)
                raise SystemExit(1)
    result = expand_for_threads(
        program, sema, args.loop,
        optimize=flags if flags is not None else _opt_flags(args),
        layout=args.layout,
        entry=args.entry,
        strict=args.strict,
        sink=sink,
        tracer=tracer,
        commutative=not getattr(args, "no_commutative", False),
    )
    return program, sema, result


def _cmd_expand(args) -> int:
    from .diagnostics import DiagnosticSink
    from .frontend import print_program

    sink = DiagnosticSink()
    tracer = _make_tracer(args)
    try:
        _, _, result = _transform(args, sink=sink, tracer=tracer)
    finally:
        _finish_trace(args, tracer)
    print(print_program(result.program))
    _render_diagnostics(sink)
    stats = result.redirect_stats
    print(
        f"[{result.num_privatized} structures + "
        f"{result.expansion.num_scalars} scalars expanded; "
        f"{stats.redirected} dereferences redirected "
        f"({stats.constant_span} constant-span, "
        f"{stats.dynamic_span} dynamic-span); "
        f"{len(result.private_sites)} private sites "
        f"({len(result.commutative_sites)} commutative, "
        f"{result.reduction_merges} reductions merged); "
        f"{len(result.quarantined)} loops quarantined]",
        file=sys.stderr,
    )
    return 0


def _parallel_staged(args, job, sink, tracer, cache_dir) -> int:
    """``parallel --cache DIR``: route the compile through the staged
    pipeline so every stage is probed from / published to the cache."""
    from .service import StageCache, StagedCompiler, run_job

    cache = StageCache(root=cache_dir, sink=sink)
    try:
        try:
            compiled = StagedCompiler(
                cache=cache, tracer=tracer, sink=sink,
            ).compile(job)
        except KeyError as exc:
            print(f"error[PIPE-NO-LOOP]: {exc.args[0]} in {args.file}",
                  file=sys.stderr)
            return 1
        jo = run_job(compiled, tracer=tracer, sink=sink, cache=cache)
    finally:
        _finish_trace(args, tracer)
    for line in jo.output:
        print(line)
    _render_diagnostics(sink)
    status = []
    if compiled.result.quarantined:
        status.append(f"quarantined {len(compiled.result.quarantined)}")
    if jo.parallel.recoveries:
        status.append(f"recovered {len(jo.parallel.recoveries)}")
    hits = sum(1 for v in jo.cache.values() if v == "hit")
    print(
        f"[{args.threads} threads: output "
        f"{'VERIFIED' if jo.verified else 'DIVERGED!'}; "
        f"loop speedup {jo.loop_speedup:.2f}x; "
        f"total speedup {jo.total_speedup:.2f}x; "
        f"races {jo.races}"
        f"{'; ' + ', '.join(status) if status else ''}; "
        f"stage cache {hits}/{len(jo.cache)}]",
        file=sys.stderr,
    )
    return 0 if jo.verified else 1


def _cmd_parallel(args) -> int:
    from .diagnostics import DiagnosticSink
    from .interp import Machine
    from .runtime import run_parallel
    from .service import Job

    sink = DiagnosticSink()
    tracer = _make_tracer(args)
    eng = _resolve_engine_cli(args)
    with open(args.file) as fh:
        source = fh.read()
    job = Job.from_kwargs(
        source, list(args.loop), args.threads, _opt_flags(args),
        entry=args.entry, strict=args.strict, chunk=args.chunk,
        watchdog=args.watchdog, layout=args.layout, engine=eng,
        backend=args.backend, workers=args.workers,
        commutative=not args.no_commutative,
    )
    mc = {}
    if getattr(args, "max_restarts", None) is not None:
        mc["max_restarts"] = args.max_restarts
    if getattr(args, "retry_budget", None) is not None:
        mc["retry_budget"] = args.retry_budget
    injectors = None
    if getattr(args, "chaos", None):
        from .runtime import parse_chaos_spec
        injectors = [parse_chaos_spec(spec, seed=i)
                     for i, spec in enumerate(args.chaos)]
    cache_dir = getattr(args, "cache", None)
    if cache_dir and (mc or injectors):
        # the staged runner has no chaos/supervision plumbing — honor
        # the fault flags and skip the cache rather than silently
        # dropping them
        print("warning[CLI-CACHE]: --cache does not compose with "
              "chaos/supervision flags; running uncached",
              file=sys.stderr)
        cache_dir = None
    if cache_dir:
        return _parallel_staged(args, job, sink, tracer, cache_dir)
    try:
        program, sema, result = _transform(args, sink=sink,
                                           tracer=tracer,
                                           flags=job.options.flags)
        # the baseline is unobserved, so the bare tier is safe for it
        # (native keeps native: the hardware-speed run IS the point)
        base_eng = eng if eng in ("ast", "native") else "bytecode-bare"
        base = Machine(program, sema, engine=base_eng)
        with tracer.phase("sequential-baseline"):
            base.run(args.entry)
        outcome = run_parallel(result, job=job, sink=sink,
                               tracer=tracer, mc=mc or None,
                               fault_injectors=injectors)
    finally:
        _finish_trace(args, tracer)
    for line in outcome.output:
        print(line)
    _render_diagnostics(sink)
    ok = outcome.output == base.output
    loop_par = sum(
        ex.makespan + ex.runtime_cycles for ex in outcome.loops.values()
    )
    loop_seq = sum(tl.profile.loop_cycles for tl in result.loops)
    status = []
    if result.quarantined:
        status.append(f"quarantined {len(result.quarantined)}")
    if outcome.recoveries:
        status.append(f"recovered {len(outcome.recoveries)}")
    print(
        f"[{args.threads} threads: output "
        f"{'VERIFIED' if ok else 'DIVERGED!'}; "
        f"loop speedup {loop_seq / loop_par if loop_par else 0:.2f}x; "
        "total speedup "
        f"{base.cost.cycles / outcome.total_cycles:.2f}x; "
        f"races {len(outcome.races)}"
        f"{'; ' + ', '.join(status) if status else ''}]",
        file=sys.stderr,
    )
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    from .service import ExpansionService

    # cache_root=None → the default cache dir; False → memory-only
    cache_root = False if args.no_cache else args.cache_dir
    service = ExpansionService(args.socket, cache_root=cache_root,
                               max_sessions=args.max_sessions)
    cache_desc = ("disabled" if args.no_cache
                  else args.cache_dir or "default")
    print(f"[repro serve: listening on {args.socket}; "
          f"disk cache {cache_desc}; "
          f"pool {args.max_sessions} sessions]",
          file=sys.stderr)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        service.close()
    return 0


def _discover_loops(program) -> List[str]:
    """Labels of every ``#pragma expand``-marked candidate loop."""
    from .frontend import ast

    return [
        loop.label for loop in ast.iter_loops(program)
        if loop.label and loop.pragmas
    ]


def _lint_one(title, program, sema, labels, args, sink, tracer) -> "object":
    from .lint import run_lint
    from .transform import expand_for_threads

    result = expand_for_threads(
        program, sema, labels,
        optimize=_opt_flags(args),
        layout=args.layout,
        entry=getattr(args, "entry", "main"),
        strict=args.strict,
        sink=sink,
        tracer=tracer,
        commutative=not getattr(args, "no_commutative", False),
    )
    report = run_lint(result, sink=sink, tracer=tracer,
                      codes=args.rule or None)
    for diag in report.findings:
        print(diag.render())
    print(
        f"[{title}: {report.rules_run} rules, "
        f"{len(report.findings)} finding(s)]",
        file=sys.stderr,
    )
    return report


def _diag_dict(diag) -> dict:
    """JSON shape of one finding (Diagnostic has no to_dict)."""
    return {
        "code": diag.code,
        "severity": diag.severity,
        "message": diag.message,
        "loop": diag.loop,
        "loc": list(diag.loc) if diag.loc else None,
        "phase": diag.phase,
        "data": diag.data,
    }


def _lint_json(reports) -> dict:
    """Machine-readable report of a whole ``repro lint`` invocation."""
    return {
        "reports": [
            {
                "title": title,
                "rules_run": report.rules_run,
                "clean": report.clean,
                "findings": [_diag_dict(d) for d in report.findings],
                "certificates": report.certificates,
            }
            for title, report in reports
        ],
        "findings": sum(len(r.findings) for _t, r in reports),
    }


def _cmd_lint(args) -> int:
    from .diagnostics import DiagnosticSink, severity_rank

    if bool(args.file) == bool(args.bench):
        print("error: lint needs a source file or --bench NAME|all "
              "(not both)", file=sys.stderr)
        return 2
    sink = DiagnosticSink()
    tracer = _make_tracer(args)
    reports = []
    try:
        if args.bench:
            from .bench import all_benchmarks, get

            names = [s.name for s in all_benchmarks()] \
                if args.bench == "all" else [args.bench]
            from .frontend import parse_and_analyze

            for name in names:
                spec = get(name)
                program, sema = parse_and_analyze(spec.source,
                                                  tracer=tracer)
                reports.append((name, _lint_one(
                    name, program, sema, spec.loop_labels, args, sink,
                    tracer,
                )))
        else:
            program, sema = _load(args.file, tracer=tracer)
            labels = args.loop or _discover_loops(program)
            if not labels:
                print("error[PIPE-NO-LOOP]: no labeled "
                      f"#pragma expand loop in {args.file}",
                      file=sys.stderr)
                return 1
            reports.append((args.file, _lint_one(
                args.file, program, sema, labels, args, sink, tracer,
            )))
    finally:
        _finish_trace(args, tracer)
    if args.json is not None:
        import json

        payload = json.dumps(_lint_json(reports), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            print(f"[lint report written to {args.json}]",
                  file=sys.stderr)
    findings = [d for _t, r in reports for d in r.findings]
    has_errors = any(
        severity_rank(d.severity) >= severity_rank("error")
        for d in findings
    )
    if has_errors or (args.fail_on_warning and findings):
        return 1
    return 0


def _cmd_bench(args) -> int:
    # engine first: importing .bench constructs a default Harness,
    # which resolves $REPRO_ENGINE — a bogus value must surface as a
    # structured CLI error, not an import-time traceback
    eng = _resolve_engine_cli(args)

    from .bench import Harness, all_benchmarks
    from .bench.report import full_report
    from .bench.trajectory import emit_trajectory

    names = [s.name for s in all_benchmarks()] if args.name == "all" \
        else [args.name]
    tracer = _make_tracer(args)
    harness = Harness(tracer=tracer, engine=eng,
                      backend=args.backend, workers=args.workers)
    results = {}
    try:
        for name in names:
            print(f"measuring {name} ...", file=sys.stderr)
            results[name] = harness.result(name)
    finally:
        _finish_trace(args, tracer)
    print(full_report(results))
    if args.json is not None or args.out is not None:
        path = emit_trajectory(results,
                               path=(args.json or None) or args.out)
        print(f"[trajectory written to {path}]", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="General data structure expansion for multi-threading "
                    "(PLDI 2013) — reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace(p):
        p.add_argument(
            "--trace", metavar="PATH", default=None,
            help="write Chrome trace-event JSON (phase spans + runtime "
                 "timeline + metrics) to PATH",
        )
        p.add_argument(
            "--trace-summary", action="store_true",
            help="print aggregated phase/event/metric tables to stderr",
        )

    def add_engine(p):
        from .interp import ENGINE_ENV, ENGINES

        p.add_argument(
            "--engine", choices=ENGINES, default=None,
            help="execution tier: one of %s (default: $%s, else 'ast'); "
                 "'bytecode' matches 'ast' observation-for-observation, "
                 "'bytecode-bare' drops observer fan-out for speed, "
                 "'native' compiles analyzed loops to C and runs them "
                 "at hardware speed (needs a C compiler; degrades to "
                 "bytecode-bare with a warning when unavailable)"
                 % (", ".join(ENGINES), ENGINE_ENV),
        )

    def add_backend(p):
        p.add_argument(
            "--backend", choices=("simulated", "process"),
            default="simulated",
            help="parallel execution backend: 'simulated' models the "
                 "threads on the cost model; 'process' additionally "
                 "executes eligible loops on real worker processes over "
                 "OS shared memory (bit-identical results, real "
                 "wall-clock parallelism)",
        )
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="process-backend worker pool size (default: the "
                 "thread count)",
        )
        p.add_argument(
            "--max-restarts", type=int, default=None, metavar="N",
            help="process-backend supervision: dead-worker respawns "
                 "allowed per session before the pool shrinks/degrades "
                 "(default 3)",
        )
        p.add_argument(
            "--retry-budget", type=int, default=None, metavar="N",
            help="process-backend supervision: re-dispatches allowed "
                 "per task before degrading to the simulated backend "
                 "(default 2)",
        )
        p.add_argument(
            "--chaos", action="append", default=None, metavar="SPEC",
            help="process-backend chaos injection (repeatable): "
                 "kill[:task=I,after-iter=K], stall[:task=I,hold=S], "
                 "drop[:rate=R,ks=K1+K2], delay[:seconds=S] — "
                 "deterministic, seeded by position",
        )

    def add_common(p, needs_loop=False):
        p.add_argument("file", help="MiniC source file")
        p.add_argument("--entry", default="main")
        if needs_loop:
            p.add_argument(
                "--loop", action="append", required=True,
                help="candidate loop label (repeatable)",
            )
        add_trace(p)

    p_run = sub.add_parser("run", help="interpret a program sequentially")
    add_common(p_run)
    add_engine(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_prof = sub.add_parser("profile", help="profile a candidate loop")
    p_prof.add_argument("file")
    p_prof.add_argument("--entry", default="main")
    p_prof.add_argument("--loop", required=True)
    p_prof.add_argument("--save-ddg", metavar="PATH")
    add_trace(p_prof)
    add_engine(p_prof)
    p_prof.set_defaults(func=_cmd_profile)

    for name, fn, help_text in (
        ("expand", _cmd_expand, "print the transformed program"),
        ("parallel", _cmd_parallel, "expand and run on N threads"),
        ("lint", _cmd_lint, "statically audit the transformed IR"),
    ):
        p = sub.add_parser(name, help=help_text)
        if name == "lint":
            p.add_argument("file", nargs="?", default=None,
                           help="MiniC source file (or use --bench)")
            p.add_argument("--entry", default="main")
            p.add_argument(
                "--loop", action="append", default=None,
                help="candidate loop label (default: every labeled "
                     "#pragma expand loop)",
            )
            p.add_argument(
                "--bench", metavar="NAME", default=None,
                help="lint a registered benchmark kernel, or 'all'",
            )
            p.add_argument(
                "--fail-on-warning", action="store_true",
                help="exit nonzero on any finding, not just errors",
            )
            p.add_argument(
                "--rule", action="append", default=[], metavar="CODE",
                help="run only the named LINT-* rule (repeatable)",
            )
            p.add_argument(
                "--json", nargs="?", const="-", default=None,
                metavar="PATH",
                help="emit a machine-readable report (findings, rule "
                     "ids, certificate verdicts) to PATH, or stdout "
                     "when PATH is omitted",
            )
            add_trace(p)
        else:
            add_common(p, needs_loop=True)
        p.add_argument("--no-optimize", action="store_true",
                       help="disable all §3.4 optimizations (Fig. 9a "
                            "mode; shorthand for every --no-opt-*)")
        for opt in OPT_NAMES:
            p.add_argument(f"--no-opt-{opt}", action="store_true",
                           help=f"disable the {opt.replace('-', ' ')} "
                                "optimization")
        p.add_argument("--opt", action="append", default=[],
                       choices=OPT_NAMES, metavar="NAME",
                       help="re-enable one optimization (combine with "
                            "--no-optimize for single-opt ablations)")
        p.add_argument("--layout", choices=("bonded", "interleaved",
                                            "adaptive"),
                       default="bonded")
        mode = p.add_mutually_exclusive_group()
        mode.add_argument(
            "--strict", dest="strict", action="store_true", default=True,
            help="fail fast on any pipeline/runtime failure (default)",
        )
        mode.add_argument(
            "--permissive", dest="strict", action="store_false",
            help="degrade gracefully: quarantine failing loops, recover "
                 "races/faults by sequential re-execution",
        )
        p.add_argument(
            "--no-commutative", action="store_true",
            help="disable the static commutativity prover (proven "
                 "reductions stay in their Definition-5 class)",
        )
        if name == "parallel":
            add_engine(p)
            add_backend(p)
            p.add_argument("--threads", "-n", type=int, default=4)
            p.add_argument("--chunk", type=int, default=1,
                           help="DOACROSS scheduling chunk size")
            p.add_argument(
                "--watchdog", type=int, default=None, metavar="STEPS",
                help="per-loop-execution statement budget (structured "
                     "timeout instead of a hang)",
            )
            p.add_argument(
                "--cache", metavar="DIR", default=None,
                help="compile through the staged pipeline with a "
                     "persistent stage cache rooted at DIR (repeat a "
                     "run to hit every stage)",
            )
        p.set_defaults(func=fn)

    p_serve = sub.add_parser(
        "serve",
        help="resident expansion service: compile-once/serve-many "
             "daemon on a Unix socket (line-delimited JSON)",
    )
    p_serve.add_argument(
        "--socket", required=True, metavar="PATH",
        help="Unix socket path to listen on",
    )
    p_serve.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="stage-cache root (default: $REPRO_CACHE_DIR, else "
             "$XDG_CACHE_HOME/repro, else ~/.cache/repro)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk stage cache (memory tier only)",
    )
    p_serve.add_argument(
        "--max-sessions", type=int, default=4, metavar="N",
        help="warm process-backend sessions to keep pooled",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_bench = sub.add_parser("bench", help="run benchmark(s)")
    p_bench.add_argument("name", help="benchmark name or 'all'")
    p_bench.add_argument(
        "--json", nargs="?", const="", default=None, metavar="PATH",
        help="emit a BENCH_<timestamp>.json speedup/overhead trajectory "
             "(default name when PATH omitted)",
    )
    p_bench.add_argument(
        "--out", metavar="DIR|FILE", default=None,
        help="destination for the trajectory JSON: a directory (gets "
             "the generated BENCH_<timestamp>.json name) or an exact "
             "file path; implies --json",
    )
    add_trace(p_bench)
    add_engine(p_bench)
    add_backend(p_bench)
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from .diagnostics import DiagnosableError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except DiagnosableError as exc:
        # strict-mode fail-fast: render the structured diagnostic
        # instead of dumping a traceback on the user
        print(exc.diagnostic.render(), file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
