"""Command-line interface: ``python -m repro <command> file.c``.

Commands mirror the library's workflow so the toolchain is usable
without writing Python:

* ``run``      — interpret a MiniC program sequentially
* ``profile``  — profile a candidate loop; print the programmer-
  verification report (optionally save the graph as JSON)
* ``expand``   — run the expansion pipeline; print the transformed
  source and a summary
* ``parallel`` — expand + run on N simulated threads; print speedups
* ``bench``    — run one benchmark (or ``all``) through the harness

Examples::

    python -m repro run program.c
    python -m repro profile program.c --loop L --save-ddg graph.json
    python -m repro expand program.c --loop L --no-optimize
    python -m repro parallel program.c --loop L --threads 8
    python -m repro bench dijkstra
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _load(path: str):
    from .frontend import parse_and_analyze

    with open(path) as fh:
        source = fh.read()
    return parse_and_analyze(source)


def _cmd_run(args) -> int:
    from .interp import Machine

    program, sema = _load(args.file)
    machine = Machine(program, sema)
    code = machine.run(args.entry)
    for line in machine.output:
        print(line)
    print(
        f"[exit {code}; {machine.cost.cycles:,.0f} cycles, "
        f"{machine.cost.instructions:,} instructions, "
        f"{machine.memory.peak_footprint():,} bytes peak]",
        file=sys.stderr,
    )
    return code


def _cmd_profile(args) -> int:
    from .analysis import profile_loop
    from .analysis.ddg_io import save_profile, verification_report
    from .frontend import ast

    program, sema = _load(args.file)
    loop = ast.find_loop(program, args.loop)
    profile = profile_loop(program, sema, loop, entry=args.entry)
    print(verification_report(program, profile))
    if args.save_ddg:
        save_profile(profile, args.save_ddg)
        print(f"\n[dependence graph saved to {args.save_ddg}]",
              file=sys.stderr)
    return 0


def _render_diagnostics(sink) -> None:
    """Print accumulated structured diagnostics to stderr."""
    for diag in sink:
        print(diag.render(), file=sys.stderr)


def _transform(args, sink=None):
    from .frontend import ast
    from .transform import expand_for_threads

    program, sema = _load(args.file)
    for label in args.loop:
        try:
            ast.find_loop(program, label)
        except KeyError:
            if args.strict:
                print(f"error[PIPE-NO-LOOP]: no loop labeled {label!r} "
                      f"in {args.file}", file=sys.stderr)
                raise SystemExit(1)
    result = expand_for_threads(
        program, sema, args.loop,
        optimize=not args.no_optimize,
        layout=args.layout,
        entry=args.entry,
        strict=args.strict,
        sink=sink,
    )
    return program, sema, result


def _cmd_expand(args) -> int:
    from .diagnostics import DiagnosticSink
    from .frontend import print_program

    sink = DiagnosticSink()
    _, _, result = _transform(args, sink=sink)
    print(print_program(result.program))
    _render_diagnostics(sink)
    stats = result.redirect_stats
    print(
        f"[{result.num_privatized} structures + "
        f"{result.expansion.num_scalars} scalars expanded; "
        f"{stats.redirected} dereferences redirected "
        f"({stats.constant_span} constant-span, "
        f"{stats.dynamic_span} dynamic-span); "
        f"{len(result.private_sites)} private sites; "
        f"{len(result.quarantined)} loops quarantined]",
        file=sys.stderr,
    )
    return 0


def _cmd_parallel(args) -> int:
    from .diagnostics import DiagnosticSink
    from .interp import Machine
    from .runtime import run_parallel

    sink = DiagnosticSink()
    program, sema, result = _transform(args, sink=sink)
    base = Machine(program, sema)
    base.run(args.entry)
    outcome = run_parallel(result, args.threads, entry=args.entry,
                           chunk=args.chunk, strict=args.strict,
                           sink=sink, watchdog=args.watchdog)
    for line in outcome.output:
        print(line)
    _render_diagnostics(sink)
    ok = outcome.output == base.output
    loop_par = sum(
        ex.makespan + ex.runtime_cycles for ex in outcome.loops.values()
    )
    loop_seq = sum(tl.profile.loop_cycles for tl in result.loops)
    status = []
    if result.quarantined:
        status.append(f"quarantined {len(result.quarantined)}")
    if outcome.recoveries:
        status.append(f"recovered {len(outcome.recoveries)}")
    print(
        f"[{args.threads} threads: output "
        f"{'VERIFIED' if ok else 'DIVERGED!'}; "
        f"loop speedup {loop_seq / loop_par if loop_par else 0:.2f}x; "
        f"total speedup "
        f"{base.cost.cycles / outcome.total_cycles:.2f}x; "
        f"races {len(outcome.races)}"
        f"{'; ' + ', '.join(status) if status else ''}]",
        file=sys.stderr,
    )
    return 0 if ok else 1


def _cmd_bench(args) -> int:
    from .bench import Harness, all_benchmarks
    from .bench.report import full_report

    names = [s.name for s in all_benchmarks()] if args.name == "all" \
        else [args.name]
    harness = Harness()
    results = {}
    for name in names:
        print(f"measuring {name} ...", file=sys.stderr)
        results[name] = harness.result(name)
    print(full_report(results))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="General data structure expansion for multi-threading "
                    "(PLDI 2013) — reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, needs_loop=False):
        p.add_argument("file", help="MiniC source file")
        p.add_argument("--entry", default="main")
        if needs_loop:
            p.add_argument(
                "--loop", action="append", required=True,
                help="candidate loop label (repeatable)",
            )

    p_run = sub.add_parser("run", help="interpret a program sequentially")
    add_common(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_prof = sub.add_parser("profile", help="profile a candidate loop")
    p_prof.add_argument("file")
    p_prof.add_argument("--entry", default="main")
    p_prof.add_argument("--loop", required=True)
    p_prof.add_argument("--save-ddg", metavar="PATH")
    p_prof.set_defaults(func=_cmd_profile)

    for name, fn, help_text in (
        ("expand", _cmd_expand, "print the transformed program"),
        ("parallel", _cmd_parallel, "expand and run on N threads"),
    ):
        p = sub.add_parser(name, help=help_text)
        add_common(p, needs_loop=True)
        p.add_argument("--no-optimize", action="store_true",
                       help="disable the §3.4 optimizations (Fig. 9a mode)")
        p.add_argument("--layout", choices=("bonded", "interleaved"),
                       default="bonded")
        mode = p.add_mutually_exclusive_group()
        mode.add_argument(
            "--strict", dest="strict", action="store_true", default=True,
            help="fail fast on any pipeline/runtime failure (default)",
        )
        mode.add_argument(
            "--permissive", dest="strict", action="store_false",
            help="degrade gracefully: quarantine failing loops, recover "
                 "races/faults by sequential re-execution",
        )
        if name == "parallel":
            p.add_argument("--threads", "-n", type=int, default=4)
            p.add_argument("--chunk", type=int, default=1,
                           help="DOACROSS scheduling chunk size")
            p.add_argument(
                "--watchdog", type=int, default=None, metavar="STEPS",
                help="per-loop-execution statement budget (structured "
                     "timeout instead of a hang)",
            )
        p.set_defaults(func=fn)

    p_bench = sub.add_parser("bench", help="run benchmark(s)")
    p_bench.add_argument("name", help="benchmark name or 'all'")
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from .diagnostics import DiagnosableError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except DiagnosableError as exc:
        # strict-mode fail-fast: render the structured diagnostic
        # instead of dumping a traceback on the user
        print(exc.diagnostic.render(), file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
