"""Thin setup.py kept for offline environments without the `wheel`
package, where PEP 517 editable installs fail; `pip install -e .
--no-use-pep517 --no-build-isolation` uses this legacy path."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
