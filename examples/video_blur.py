"""Media workload: parallelizing a video blur with a shared line buffer.

The paper's motivating applications are media codecs (MediaBench II)
whose per-macroblock scratch structures defeat array privatization.
This example is a small separable blur over video frames: each row pass
stages pixels in a *function-scope* line buffer plus a global
accumulator struct that are reused across iterations of the row loop —
loop-carried anti/output dependences with zero actual communication.

The example shows the analysis story step by step:

1. profile the loop and print the access breakdown (the paper's Fig. 8
   view);
2. show which structures the pipeline decides to expand;
3. run on 1/2/4/8 simulated threads and print the speedup curve
   (the paper's Fig. 11 view), with every run checked against the
   sequential output.

Run:  python examples/video_blur.py
"""

from repro import Machine, parse_and_analyze
from repro.analysis import (
    build_access_classes, classify, compute_breakdown, profile_loop,
)
from repro.frontend import ast
from repro.runtime import run_parallel
from repro.transform import expand_for_threads

SOURCE = r"""
int W = 48;
int H = 12;

unsigned char frame[12][48];      // input frame (shared, read-only)
unsigned char blurred[12][48];    // output frame (disjoint row writes)

unsigned char line[48];           // staging buffer: privatized
struct stats {
    int sum;
    int peak;
};
struct stats rowstat;             // per-row accumulator: privatized

int checksum[12];

void blur_row(int y) {
    int x;
    rowstat.sum = 0;
    rowstat.peak = 0;
    for (x = 0; x < W; x++) {
        line[x] = frame[y][x];
    }
    for (x = 1; x < W - 1; x++) {
        int v = (line[x - 1] + 2 * line[x] + line[x + 1]) / 4;
        blurred[y][x] = (unsigned char)v;
        rowstat.sum += v;
        if (v > rowstat.peak) {
            rowstat.peak = v;
        }
    }
    checksum[y] = rowstat.sum * 31 + rowstat.peak;
}

int main(void) {
    int y;
    int x;
    int seed = 2024;
    for (y = 0; y < H; y++) {
        for (x = 0; x < W; x++) {
            seed = seed * 1103515245 + 12345;
            frame[y][x] = (seed >> 16) & 255;
        }
    }
    #pragma expand parallel(doall)
    ROWS: for (y = 0; y < H; y++) {
        blur_row(y);
    }
    for (y = 0; y < H; y++) print_int(checksum[y]);
    return 0;
}
"""


def main():
    program, sema = parse_and_analyze(SOURCE)

    # sequential baseline
    base = Machine(program, sema)
    base.run()

    # step 1: the dependence story
    loop = ast.find_loop(program, "ROWS")
    profile = profile_loop(program, sema, loop)
    priv = classify(profile.ddg, build_access_classes(profile.ddg))
    breakdown = compute_breakdown(profile.ddg, priv)
    fractions = breakdown.fractions()
    print("== dynamic access breakdown of the row loop ==")
    print(f"free of loop-carried deps : {fractions['free']:.1%}")
    print(f"expandable (Definition 5) : {fractions['expandable']:.1%}")
    print(f"stuck with carried deps   : {fractions['carried']:.1%}")

    # step 2: the transform's decisions
    result = expand_for_threads(program, sema, ["ROWS"],
                                profiles={"ROWS": profile})
    expanded = sorted(
        ev.decl.name for ev in result.expansion.expanded_vars.values()
    )
    print("\n== expansion decisions ==")
    print(f"expanded structures: {expanded}")
    print(f"promotion produced {len(result.promoter.fat_structs())} "
          "fat pointer type(s)")

    # step 3: the speedup curve
    print("\n== speedup over sequential (output verified each run) ==")
    print(f"{'threads':>8} {'loop':>8} {'total':>8} {'memory':>8}")
    for n in (1, 2, 4, 8):
        outcome = run_parallel(result, n)
        assert outcome.output == base.output, "wrong answer!"
        execution = outcome.loop("ROWS")
        loop_speedup = profile.loop_cycles / (
            execution.makespan + execution.runtime_cycles
        )
        total_speedup = base.cost.cycles / outcome.total_cycles
        memory = outcome.peak_memory / base.memory.peak_footprint()
        print(f"{n:>8} {loop_speedup:>7.2f}x {total_speedup:>7.2f}x "
              f"{memory:>7.2f}x")


if __name__ == "__main__":
    main()
