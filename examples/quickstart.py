"""Quickstart: privatize and parallelize a loop in one call.

The sample loop reuses a malloc'd scratch buffer across iterations —
the exact pattern (the paper's Figure 1, from 256.bzip2) that blocks
naive parallelization: every iteration writes the same addresses, so
the loop looks sequential even though each iteration's values are
independent.

``expand_and_run`` profiles the loop, classifies its accesses
(Definitions 1-5), expands the contended structures N ways, redirects
private accesses to per-thread copies, and runs the result on simulated
threads with race checking.

Run:  python examples/quickstart.py
"""

from repro import expand_and_run, print_program

SOURCE = r"""
int results[8];

int main(void) {
    int m = 32;
    int *scratch = (int*)malloc(sizeof(int) * m);
    int block;
    int k;
    int b;
    #pragma expand parallel(doall)
    L: for (block = 0; block < 8; block++) {
        for (k = 0; k < m; k++) scratch[k] = block * 100 + k;  // reinit
        b = 0;
        for (k = 0; k < m; k++) {
            b += (scratch[k] * scratch[k]) % 97;
        }
        results[block] = b;
    }
    for (k = 0; k < 8; k++) print_int(results[k]);
    return 0;
}
"""


def main():
    outcome = expand_and_run(SOURCE, loop_labels=["L"], nthreads=4)

    print("== program output (verified identical to sequential) ==")
    print(" ".join(outcome.output))

    print("\n== what the transform did ==")
    transform = outcome.transform
    print(f"thread-private access sites : {len(transform.private_sites)}")
    print(f"data structures expanded    : {transform.num_privatized}")
    print(f"scalars expanded            : {transform.expansion.num_scalars}")
    print("pointer derefs redirected   : "
          f"{transform.redirect_stats.redirected}")

    print("\n== transformed source (compare with the paper's Fig. 1b) ==")
    print(print_program(transform.program))

    print("== speedup on 4 simulated threads ==")
    print(f"candidate loop : {outcome.loop_speedup:.2f}x")
    print(f"whole program  : {outcome.total_speedup:.2f}x")
    print(f"races detected : {len(outcome.races)}")


if __name__ == "__main__":
    main()
