"""Compiler-writer's view: inspect every analysis the pipeline runs.

For a loop over linked-list work items (the data structure class the
paper exists for), this example dumps:

* the loop-level data dependence graph (Definition 1) with each edge's
  kind and carried/independent status;
* upwards-exposed loads and downwards-exposed stores (Definitions 2-3);
* the access-class partition (Definition 4) and each class's
  private/shared verdict with its blockers (Definition 5);
* the Andersen points-to solution for the program's pointers;
* the resulting expansion set and the transformed source.

Run:  python examples/inspect_analysis.py
"""

from repro import parse_and_analyze, print_program
from repro.analysis import (
    analyze_pointsto, build_access_classes, classify, profile_loop,
)
from repro.frontend import ast
from repro.transform import expand_for_threads

SOURCE = r"""
struct job { int weight; struct job *next; };
struct job *todo;                 // worklist rebuilt per round: privatized
int totals[6];

int main(void) {
    int round;
    int j;
    int acc;
    struct job *it;
    #pragma expand parallel(doall)
    R: for (round = 0; round < 6; round++) {
        todo = 0;
        for (j = 0; j < 4 + round; j++) {
            struct job *x = (struct job*)malloc(sizeof(struct job));
            x->weight = round * 10 + j;
            x->next = todo;
            todo = x;
        }
        acc = 0;
        it = todo;
        while (it) { acc += it->weight; it = it->next; }
        while (todo) {
            struct job *dead;
            dead = todo;
            todo = todo->next;
            free(dead);
        }
        totals[round] = acc;
    }
    for (j = 0; j < 6; j++) print_int(totals[j]);
    return 0;
}
"""


def site_label(profile, site):
    objs = profile.site_objects.get(site, ())
    names = sorted(profile.object_labels[o] for o in objs)
    return ",".join(names) if names else "?"


def main():
    program, sema = parse_and_analyze(SOURCE)
    loop = ast.find_loop(program, "R")

    profile = profile_loop(program, sema, loop)
    ddg = profile.ddg
    print(f"== dependence graph: {len(ddg.sites)} access sites, "
          f"{len(ddg.edges)} edges ==")
    by_kind = {}
    for edge in ddg.edges:
        key = (edge.kind, "carried" if edge.carried else "independent")
        by_kind[key] = by_kind.get(key, 0) + 1
    for (kind, mode), count in sorted(by_kind.items()):
        print(f"  {kind:<7} {mode:<12} {count}")
    print(f"upwards-exposed loads   : {len(ddg.upward_exposed)}")
    print(f"downwards-exposed stores: {len(ddg.downward_exposed)}")

    classes = build_access_classes(ddg)
    priv = classify(ddg, classes)
    print(f"\n== access classes (Definition 4): {len(classes)} ==")
    for info in sorted(priv.class_infos, key=lambda c: -len(c.members)):
        touched = sorted({
            site_label(profile, s) for s in info.members
        })
        verdict = "PRIVATE" if info.private else "shared"
        detail = "" if info.private else f"  [{'; '.join(info.blockers)}]"
        print(f"  {verdict:<8} {len(info.members):>3} sites on "
              f"{touched}{detail}")

    pointsto = analyze_pointsto(program, sema)
    print("\n== points-to (pointer variables) ==")
    for fn in program.functions():
        for node in fn.body.walk():
            if isinstance(node, ast.DeclStmt):
                for decl in node.decls:
                    if not decl.ctype.is_pointer:
                        continue
                    objs = pointsto.pts_of(("obj", ("var", decl.nid)))
                    labels = sorted(
                        pointsto.object_labels.get(o, str(o)) for o in objs
                    )
                    print(f"  {fn.name}::{decl.name} -> {labels}")

    result = expand_for_threads(program, sema, ["R"],
                                profiles={"R": profile})
    print(f"\n== expansion set: {result.num_privatized} structures, "
          f"{result.expansion.num_scalars} scalars ==")
    for ev in result.expansion.expanded_vars.values():
        print(f"  {ev.decl.name}: {ev.mode} expansion of {ev.orig_type!r}")
    print(f"  + {len(result.expansion.expanded_alloc_origins)} "
          "heap allocation site(s) enlarged xN")

    print("\n== transformed program ==")
    print(print_program(result.program))


if __name__ == "__main__":
    main()
