"""DOACROSS pipeline: an ordered block compressor, expansion vs the
runtime-privatization baseline.

This is the 256.bzip2 situation from the paper: blocks are compressed
independently (sortable work arrays, frequency tables — all
privatizable), but reading the input and emitting the compressed
stream are inherently ordered.  Expansion removes the spurious
dependences so the block work pipelines across threads, with only the
cursor/emit statements serialized.

The example also runs the same loop under the SpiceC-style *runtime*
privatization baseline, showing why the paper's compile-time approach
wins: the baseline pays a monitoring call on every private access.

Run:  python examples/block_compressor.py
"""

from repro import Machine, parse_and_analyze
from repro.analysis import build_access_classes, classify, profile_loop
from repro.baselines import run_runtime_privatization
from repro.frontend import ast
from repro.runtime import run_parallel
from repro.transform import expand_for_threads

SOURCE = r"""
int N = 320;
int BS = 32;

unsigned char input[320];
unsigned char output[400];

int work[32];                     // per-block scratch: privatized
int freq[16];                     // frequency table: privatized
int cursor = 0;                   // ordered input position (serial)
int outpos = 0;                   // ordered output position (serial)
unsigned int digest = 0;

int pack_block(int off) {
    int i;
    int v;
    for (i = 0; i < 16; i++) freq[i] = 0;
    for (i = 0; i < BS; i++) {
        work[i] = input[off + i] * 3 + i;
        freq[work[i] & 15] += 1;
    }
    v = 0;
    for (i = 0; i < BS; i++) {
        v = (v * 33 + work[i] + freq[i & 15]) & 0xffffff;
    }
    return v;
}

int main(void) {
    int i;
    int off;
    int v;
    int seed = 31;
    for (i = 0; i < N; i++) {
        seed = seed * 1103515245 + 12345;
        input[i] = (seed >> 16) & 255;
    }
    #pragma expand parallel(doacross)
    BLOCKS: while (1) {
        if (cursor >= N) break;           // serial: input cursor
        off = cursor;
        cursor = cursor + BS;             // serial: advance
        v = pack_block(off);              // parallel: all private work
        for (i = 0; i < 8; i++) {         // serial: ordered emit
            output[outpos % 400] = (v >> i) & 255;
            outpos = outpos + 1;
        }
        digest = digest * 31 + (unsigned int)v;
    }
    print_int((int)(digest & 0x7fffffff));
    print_int(outpos);
    return 0;
}
"""


def main():
    program, sema = parse_and_analyze(SOURCE)
    base = Machine(program, sema)
    base.run()
    print(f"sequential output: {base.output}")

    loop = ast.find_loop(program, "BLOCKS")
    profile = profile_loop(program, sema, loop)
    priv = classify(profile.ddg, build_access_classes(profile.ddg))

    result = expand_for_threads(program, sema, ["BLOCKS"],
                                profiles={"BLOCKS": profile})
    tl = result.loops[0]
    print(f"\nDOACROSS plan: {len(tl.serial_stmt_origins)} of the loop "
          "body's statements stay ordered; the rest pipeline freely")

    print(f"\n{'threads':>8} {'expansion':>12} {'rt-priv':>12} "
          f"{'stalled':>10}")
    profiles = {"BLOCKS": profile}
    privs = {"BLOCKS": priv}
    for n in (1, 2, 4, 8):
        out_e = run_parallel(result, n)
        assert out_e.output == base.output
        ex = out_e.loop("BLOCKS")
        exp = profile.loop_cycles / (ex.makespan + ex.runtime_cycles)
        bd = ex.breakdown()
        stalled = (bd["wait"] + bd["sync"]) / (sum(bd.values()) or 1)

        out_r = run_runtime_privatization(
            program, sema, ["BLOCKS"], profiles, privs, nthreads=n
        )
        assert out_r.output == base.output
        rx = out_r.loop("BLOCKS")
        rtp = profile.loop_cycles / (rx.makespan + rx.runtime_cycles)
        print(f"{n:>8} {exp:>11.2f}x {rtp:>11.2f}x {stalled:>9.0%}")

    print("\nexpansion pipelines the private block work across threads;")
    print("runtime privatization spends its win on per-access monitoring.")


if __name__ == "__main__":
    main()
