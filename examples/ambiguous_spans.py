"""The paper's Figure 3, end to end: why fat pointers carry a *span*.

``mx`` is allocated from two different malloc sites with different
sizes, decided at run time.  Bonded-mode redirection must step
``tid * <original size>`` to reach this thread's copy — but the
compiler cannot know which size applies at any given dereference.  The
paper's answer is the span field: every promoted pointer carries the
byte size of the structure it references, maintained by the Table 3
rules at each assignment.

This example shows:

1. the transformed source — compare with the paper's Figures 3-4:
   ``struct { int *pointer; long span; } mx`` and dereferences through
   ``mx.pointer + __tid * mx.span / sizeof(int)``;
2. that the spans genuinely stay *dynamic* (the pipeline reports no
   constant-span redirections here, unlike single-site programs);
3. a 4-thread run, race-free with verified output — including
   ``free(mx)`` inside the loop, which exercises allocator address
   reuse across threads;
4. the same program with ONE malloc site, where §3.4's constant-span
   optimization kicks in instead.

Run:  python examples/ambiguous_spans.py
"""

from repro import Machine, parse_and_analyze, print_program
from repro.runtime import run_parallel
from repro.transform import expand_for_threads

TWO_SITES = r"""
int out[8];
int main(void) {
    int it;
    int k;
    int n;
    int m1 = 48;
    int m2 = 20;
    int *mx;
    #pragma expand parallel(doall)
    L: for (it = 0; it < 8; it++) {
        if (it % 2) {
            mx = (int*)malloc(m1);   // 12 ints
            n = 12;
        } else {
            mx = (int*)malloc(m2);   // 5 ints
            n = 5;
        }
        for (k = 0; k < n; k++) mx[k] = it * 100 + k * 7;
        out[it] = mx[n - 1] + mx[0];
        free(mx);
    }
    for (k = 0; k < 8; k++) print_int(out[k]);
    return 0;
}
"""


def show(source, title):
    program, sema = parse_and_analyze(source)
    base = Machine(program, sema)
    base.run()
    result = expand_for_threads(program, sema, ["L"])
    stats = result.redirect_stats
    print(f"== {title} ==")
    print(f"redirections: {stats.redirected} total — "
          f"{stats.constant_span} constant-span, "
          f"{stats.dynamic_span} dynamic-span")
    outcome = run_parallel(result, 4)
    assert outcome.output == base.output
    print(f"4-thread run: output verified, races: {len(outcome.races)}")
    return result


def main():
    result = show(TWO_SITES, "two ambiguous malloc sites (Figure 3)")
    print("\ntransformed main (excerpt):")
    text = print_program(result.program)
    start = text.index("int main")
    print(text[start:start + 1400])

    one_site = TWO_SITES.replace(
        """        if (it % 2) {
            mx = (int*)malloc(m1);   // 12 ints
            n = 12;
        } else {
            mx = (int*)malloc(m2);   // 5 ints
            n = 5;
        }""",
        """        mx = (int*)malloc(48);
        n = 12;""",
    )
    print()
    show(one_site, "one statically-sized site: constant spans instead")
    print("\nwith a single fixed-size site the compiler folds the span "
          "to a literal\n(section 3.4's constant propagation); with two "
          "sites it must stay a runtime field.")


if __name__ == "__main__":
    main()
