"""CLI tests (python -m repro ...)."""

import json

import pytest

from repro.cli import main

DEMO = """
int out[6];
int scratch[8];
int main(void) {
    int i; int k; int b;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 6; i++) {
        for (k = 0; k < 8; k++) scratch[k] = i * k;
        b = scratch[7];
        out[i] = b;
    }
    for (i = 0; i < 6; i++) print_int(out[i]);
    return 0;
}
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


def test_run(demo_file, capsys):
    assert main(["run", demo_file]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out == [str(i * 7) for i in range(6)]


def test_expand(demo_file, capsys):
    assert main(["expand", demo_file, "--loop", "L"]) == 0
    captured = capsys.readouterr()
    assert "__tid" in captured.out
    assert "expanded" in captured.err


def test_expand_no_optimize(demo_file, capsys):
    assert main(["expand", demo_file, "--loop", "L",
                 "--no-optimize"]) == 0
    assert "__tid" in capsys.readouterr().out


def test_parallel_verifies(demo_file, capsys):
    assert main(["parallel", demo_file, "--loop", "L", "-n", "4"]) == 0
    captured = capsys.readouterr()
    assert "VERIFIED" in captured.err
    assert "races 0" in captured.err


def test_parallel_chunk(demo_file, capsys):
    src = DEMO.replace("doall", "doacross")
    import pathlib
    p = pathlib.Path(demo_file).with_name("demo2.c")
    p.write_text(src)
    assert main(["parallel", str(p), "--loop", "L", "-n", "4",
                 "--chunk", "2"]) == 0
    assert "VERIFIED" in capsys.readouterr().err


def test_profile_and_save(demo_file, tmp_path, capsys):
    ddg_path = str(tmp_path / "graph.json")
    assert main(["profile", demo_file, "--loop", "L",
                 "--save-ddg", ddg_path]) == 0
    captured = capsys.readouterr()
    assert "Dependence graph" in captured.out
    assert "PRIVATE" in captured.out
    payload = json.loads(open(ddg_path).read())
    assert payload["loop_label"] == "L"
    assert payload["ddg"]["edges"]


def test_interleaved_layout_flag(demo_file, capsys):
    assert main(["expand", demo_file, "--loop", "L",
                 "--layout", "interleaved"]) == 0
    assert "__nthreads +" in capsys.readouterr().out


def test_missing_loop_errors(demo_file, capsys):
    with pytest.raises(SystemExit) as info:
        main(["expand", demo_file, "--loop", "NOPE"])
    assert info.value.code == 1
    assert "PIPE-NO-LOOP" in capsys.readouterr().err


def test_missing_loop_quarantined_permissive(demo_file, capsys):
    assert main(["expand", demo_file, "--loop", "L", "--loop", "NOPE",
                 "--permissive"]) == 0
    assert "quarantined" in capsys.readouterr().err
