"""Property-based differential testing of expression evaluation: random
MiniC integer expressions are evaluated by the machine and by a Python
oracle implementing C's wrap/truncate semantics."""

from hypothesis import given, settings, strategies as st

from repro.frontend.ctypes import INT
from repro.interp import run_source


class Lit:
    def __init__(self, value):
        self.value = INT.wrap(value)

    def render(self):
        # negative literals parenthesized to survive unary parsing
        return f"({self.value})" if self.value < 0 else str(self.value)

    def eval(self):
        return self.value


class Bin:
    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def render(self):
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def eval(self):
        a = self.left.eval()
        b = self.right.eval()
        if a is None or b is None:
            return None  # poisoned subtree (div-by-zero/negative shift)
        if self.op == "+":
            return INT.wrap(a + b)
        if self.op == "-":
            return INT.wrap(a - b)
        if self.op == "*":
            return INT.wrap(a * b)
        if self.op == "/":
            if b == 0:
                return None
            q = abs(a) // abs(b)
            return INT.wrap(-q if (a < 0) != (b < 0) else q)
        if self.op == "%":
            if b == 0:
                return None
            q = abs(a) // abs(b)
            q = -q if (a < 0) != (b < 0) else q
            return INT.wrap(a - q * b)
        if self.op == "&":
            return INT.wrap(a & b)
        if self.op == "|":
            return INT.wrap(a | b)
        if self.op == "^":
            return INT.wrap(a ^ b)
        if self.op == "<<":
            return INT.wrap(a << (b & 63)) if b >= 0 else None
        if self.op == ">>":
            return INT.wrap(a >> (b & 63)) if b >= 0 else None
        if self.op == "<":
            return 1 if a < b else 0
        if self.op == "==":
            return 1 if a == b else 0
        raise AssertionError(self.op)


OPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "<", "=="]


def expr_strategy(depth=3):
    leaf = st.integers(-2**31, 2**31 - 1).map(Lit)
    if depth == 0:
        return leaf
    sub = expr_strategy(depth - 1)
    node = st.builds(Bin, st.sampled_from(OPS), sub, sub)
    return st.one_of(leaf, node)


class TestExpressionOracle:
    @given(expr_strategy())
    @settings(max_examples=120, deadline=None)
    def test_machine_matches_oracle(self, tree):
        expected = tree.eval()
        if expected is None:
            return  # division by zero somewhere: skip
        source = (
            f"int main(void) {{ int r = {tree.render()};"
            f" print_int(r); return 0; }}"
        )
        machine = run_source(source)
        assert machine.output == [str(expected)], tree.render()

    @given(st.integers(-2**31, 2**31 - 1), st.integers(-2**31, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_commutativity_of_wrapping_ops(self, a, b):
        def run_one(expr):
            return run_source(
                f"int main(void) {{ print_int({expr}); return 0; }}"
            ).output[0]

        la = f"({a})" if a < 0 else str(a)
        lb = f"({b})" if b < 0 else str(b)
        for op in ("+", "*", "&", "|", "^"):
            assert run_one(f"{la} {op} {lb}") == run_one(f"{lb} {op} {la}")

    @given(st.integers(-10**9, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_negation_involution(self, a):
        lit = f"({a})" if a < 0 else str(a)
        machine = run_source(
            f"int main(void) {{ int x = {lit}; print_int(-(-x));"
            f" return 0; }}"
        )
        assert machine.output == [str(INT.wrap(a))]


class TestMemoryRoundtripProps:
    @given(st.lists(st.integers(-2**31, 2**31 - 1), min_size=1,
                    max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_array_store_load_roundtrip(self, values):
        n = len(values)
        stores = " ".join(
            f"a[{i}] = ({v});" for i, v in enumerate(values)
        )
        prints = " ".join(f"print_int(a[{i}]);" for i in range(n))
        machine = run_source(
            f"int main(void) {{ int a[{n}]; {stores} {prints} return 0; }}"
        )
        assert machine.output == [str(INT.wrap(v)) for v in values]

    @given(st.lists(st.integers(-128, 127), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_char_narrowing(self, values):
        n = len(values)
        stores = " ".join(
            f"c[{i}] = ({v});" for i, v in enumerate(values)
        )
        prints = " ".join(f"print_int(c[{i}]);" for i in range(n))
        machine = run_source(
            f"int main(void) {{ char c[{n}]; {stores} {prints}"
            f" return 0; }}"
        )
        assert machine.output == [str(v) for v in values]
