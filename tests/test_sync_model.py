"""Runtime cost-model unit tests: sync constants, breakdown math,
bandwidth ceiling."""

from repro.interp.machine import CostSink
from repro.runtime import sync
from repro.runtime.stats import LoopExecution, ParallelOutcome


class TestSyncCosts:
    def test_fork_join_grows_with_threads(self):
        assert sync.fork_join_cost(8) > sync.fork_join_cost(2)

    def test_single_thread_region_still_costs(self):
        assert sync.fork_join_cost(1) > 0

    def test_bandwidth_makespan(self):
        assert sync.bandwidth_makespan(4000) == 4000 / sync.MEMORY_PORTS


class TestCostSink:
    def test_add_accumulates(self):
        a = CostSink()
        a.cycles = 10
        a.loads = 2
        b = CostSink()
        b.cycles = 5
        b.stores = 3
        a.add(b)
        assert a.cycles == 15 and a.loads == 2 and a.stores == 3

    def test_copy_is_independent(self):
        a = CostSink()
        a.cycles = 7
        b = a.copy()
        b.cycles += 1
        assert a.cycles == 7 and b.cycles == 8


class TestLoopExecutionBreakdown:
    def make(self, nthreads=2):
        ex = LoopExecution("L", nthreads)
        for t, stats in enumerate(ex.threads):
            stats.sink.cycles = 100.0
            stats.sync_cycles = 10.0
            stats.wait_cycles = 5.0
        ex.makespan = 150.0
        ex.runtime_cycles = 20.0
        return ex

    def test_categories(self):
        ex = self.make()
        bd = ex.breakdown()
        assert bd["work"] == 200.0
        assert bd["sync"] == 20.0
        assert bd["runtime"] == 20.0
        # wait includes explicit stalls + tail idle up to makespan*N
        assert bd["wait"] >= 10.0

    def test_total_is_makespan_times_threads(self):
        ex = self.make()
        bd = ex.breakdown()
        assert abs(sum(bd.values()) - ex.makespan * ex.nthreads) < 1e-6

    def test_thread_stats_repr(self):
        ex = self.make()
        assert "busy=100" in repr(ex.threads[0])


class TestParallelOutcome:
    def test_loop_lookup(self):
        outcome = ParallelOutcome(4)
        ex = LoopExecution("L", 4)
        outcome.loops["L"] = ex
        assert outcome.loop() is ex          # single loop: no label needed
        assert outcome.loop("L") is ex

    def test_combined_makespan(self):
        outcome = ParallelOutcome(2)
        for label in ("A", "B"):
            ex = LoopExecution(label, 2)
            ex.makespan = 100.0
            ex.runtime_cycles = 10.0
            outcome.loops[label] = ex
        assert outcome.loop_makespan == 220.0
