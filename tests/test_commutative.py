"""Static commutativity prover: recognition, rejection, merge-back,
end-to-end bit identity, and the staged-pipeline certificate keys."""

import pytest

from repro import expand_and_run
from repro.analysis.commutative import (
    CERT_SCHEMA_VERSION, identity_value, prove_reductions,
)
from repro.analysis.privatization import classify
from repro.analysis.access_classes import build_access_classes
from repro.analysis.profiler import profile_loop
from repro.bench import get
from repro.frontend import ast, parse_and_analyze
from repro.frontend.ctypes import INT
from repro.interp import Machine
from repro.runtime import RaceError, process_backend_available
from repro.service import Job
from repro.transform import expand_for_threads


def _prove(source, label="L"):
    program, sema = parse_and_analyze(source)
    loop = ast.find_loop(program, label)
    profile = profile_loop(program, sema, loop, "main")
    priv = classify(profile.ddg, build_access_classes(profile.ddg))
    return prove_reductions(program, sema, loop, profile, priv)


def _loop_program(body, decls="int acc;", pre="", post=""):
    return f"""
    {decls}
    int main(void) {{
        int i;
        {pre}
        #pragma expand parallel(doall)
        L: for (i = 0; i < 32; i++) {{
            {body}
        }}
        {post}
        print_int(acc);
        return 0;
    }}
    """


class TestRecognizer:
    @pytest.mark.parametrize("body,group,pre", [
        ("acc += i;", "add", ""),
        ("acc -= i;", "add", ""),
        ("acc = acc + i;", "add", ""),
        ("acc = i + acc;", "add", ""),
        ("acc++;", "add", ""),
        ("acc *= i + 1;", "mul", ""),
        ("acc &= i;", "and", ""),
        ("acc |= i;", "or", ""),
        ("acc ^= i;", "xor", ""),
        ("if (i > acc) { acc = i; }", "max", ""),
        # min guards need a high seed or the profiled run never
        # stores and the class has no carried conflict to prove away
        ("if (acc > i) { acc = i; }", "min", "acc = 100;"),
        ("if (i < acc) { acc = i; }", "min", "acc = 100;"),
    ])
    def test_update_forms(self, body, group, pre):
        proven = _prove(_loop_program(body, pre=pre))
        assert [r.group for r in proven] == [group]
        assert proven[0].name == "acc"
        assert proven[0].identity == identity_value(group, INT)

    @pytest.mark.parametrize("body", [
        # accumulator read outside its update
        "acc += i; print_int(acc);",
        # order-sensitive read-modify-write
        "acc = i - acc;",
        # two different op groups on one accumulator
        "acc += i; acc *= 2;",
        # value depends on the accumulator itself
        "acc += acc;",
        # address-like guard with an else branch
        "if (i > acc) { acc = i; } else { acc = 0; }",
    ])
    def test_rejections(self, body):
        assert _prove(_loop_program(body)) == []

    def test_induction_variable_not_a_reduction(self):
        # `i` is read by the loop condition/body: never upgraded
        proven = _prove(_loop_program("acc += 1;"))
        assert [r.name for r in proven] == ["acc"]

    def test_interprocedural_updates(self):
        source = """
        int acc;
        void bump(int v) { acc += v; }
        int main(void) {
            int i;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 32; i++) { bump(i); }
            print_int(acc);
            return 0;
        }
        """
        proven = _prove(source)
        assert [r.name for r in proven] == ["acc"]

    def test_array_accumulator(self):
        source = _loop_program("acc[i & 3] += i;", decls="int acc[4];",
                               post="").replace("print_int(acc);",
                                                "print_int(acc[0]);")
        proven = _prove(source)
        assert [r.name for r in proven] == ["acc"]
        assert proven[0].is_array and proven[0].length == 4

    def test_escaped_address_rejected(self):
        source = """
        int acc;
        int main(void) {
            int i;
            int *p = &acc;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 32; i++) { acc += i; }
            print_int(*p);
            return 0;
        }
        """
        assert _prove(source) == []


class TestPipelineIntegration:
    def test_histogram_upgrades_three_accumulators(self):
        spec = get("histogram")
        program, sema = parse_and_analyze(spec.source)
        result = expand_for_threads(program, sema, ["L"])
        assert result.commutative_sites
        assert result.reduction_merges == 3
        (tl,) = result.loops
        assert {r.name for r in tl.priv.reductions.values()} == \
            {"hist", "total", "maxv"}
        assert len(tl.priv.commutative_classes()) == 3
        # commutative sites are private (expanded) but tracked apart
        assert tl.priv.commutative_sites <= tl.priv.private_sites

    def test_certificate_shape(self):
        spec = get("histogram")
        program, sema = parse_and_analyze(spec.source)
        result = expand_for_threads(program, sema, ["L"])
        cert = result.loops[0].certificate
        assert cert["schema"] == CERT_SCHEMA_VERSION
        assert cert["loop"] == "L"
        cats = {c["category"] for c in cert["classes"]}
        assert "commutative" in cats
        ops = {r["op"] for r in cert["reductions"]}
        assert ops == {"add", "max"}
        for red in cert["reductions"]:
            assert red["updates"] and red["facts"]["value_flow"]

    def test_certificate_is_json_serializable(self):
        import json
        spec = get("histogram")
        program, sema = parse_and_analyze(spec.source)
        result = expand_for_threads(program, sema, ["L"])
        round_tripped = json.loads(json.dumps(result.loops[0].certificate))
        assert round_tripped["loop"] == "L"

    def test_disabled_prover_leaves_classes_alone(self):
        spec = get("histogram")
        program, sema = parse_and_analyze(spec.source)
        result = expand_for_threads(program, sema, ["L"],
                                    commutative=False)
        assert not result.commutative_sites
        assert result.reduction_merges == 0
        assert result.loops[0].certificate is None


class TestEndToEnd:
    def _outputs(self, **kwargs):
        spec = get("histogram")
        return expand_and_run(
            job=Job.from_kwargs(spec.source, ["L"], 4, True, **kwargs))

    def test_bit_identical_simulated_ast(self):
        out = self._outputs(engine="ast")
        assert out.verified and not out.races

    def test_bit_identical_simulated_bytecode(self):
        out = self._outputs(engine="bytecode")
        assert out.verified and not out.races

    @pytest.mark.skipif(not process_backend_available(),
                        reason="no OS shared-memory backend here")
    def test_bit_identical_process_backend(self):
        out = self._outputs(backend="process", engine="bytecode")
        assert out.verified and not out.races

    def test_ablation_races_without_prover(self):
        """The seed pipeline rejects this loop: with the prover off the
        carried flow deps survive and the race checker fires."""
        spec = get("histogram")
        program, sema = parse_and_analyze(spec.source)
        result = expand_for_threads(program, sema, ["L"],
                                    commutative=False)
        from repro.runtime import run_parallel
        with pytest.raises(RaceError):
            run_parallel(result,
                         job=Job(spec.source, ("L",), nthreads=4))

    def test_sequential_semantics_preserved(self):
        """The transformed program (merge-back included) is still a
        correct *sequential* program."""
        spec = get("histogram")
        program, sema = parse_and_analyze(spec.source)
        base = Machine(program, sema)
        base.run()
        result = expand_for_threads(program, sema, ["L"])
        par = Machine(result.program, result.sema)
        par.run()
        assert par.output == base.output


class TestStageCacheCertificates:
    def test_warm_hit_restores_certificate(self, tmp_path):
        from repro.service import StageCache
        spec = get("histogram")
        job = Job.from_kwargs(spec.source, ["L"], 4, True)
        out1 = expand_and_run(job=job, cache=StageCache(tmp_path))
        assert out1.cache_report["classify"] == "miss"
        out2 = expand_and_run(job=job, cache=StageCache(tmp_path))
        assert out2.cache_report["classify"] == "hit"
        cert = out2.transform.loops[0].certificate
        assert cert["schema"] == CERT_SCHEMA_VERSION
        assert len(cert["reductions"]) == 3
        # the restored certificate still passes independent re-proof
        from repro.lint import run_lint
        report = run_lint(out2.transform, codes=["LINT-CERT"])
        assert report.clean
        assert report.certificates[0]["verdict"] == "verified"

    def test_schema_bump_invalidates_classify_key(self, monkeypatch):
        from repro.analysis import commutative
        from repro.service.stages import stage_keys
        spec = get("histogram")
        job = Job.from_kwargs(spec.source, ["L"], 4, True)
        before = stage_keys(job)
        monkeypatch.setattr(commutative, "CERT_SCHEMA_VERSION",
                            commutative.CERT_SCHEMA_VERSION + 1)
        after = stage_keys(job)
        assert before["profile"] == after["profile"]
        assert before["classify"] != after["classify"]
        assert before["expand"] != after["expand"]

    def test_commutative_toggle_changes_classify_key(self):
        from repro.service.stages import stage_keys
        spec = get("histogram")
        on = stage_keys(Job.from_kwargs(spec.source, ["L"], 4, True))
        off = stage_keys(Job.from_kwargs(spec.source, ["L"], 4, True,
                                         commutative=False))
        assert on["profile"] == off["profile"]
        assert on["classify"] != off["classify"]

    def test_options_wire_roundtrip(self):
        from repro.service.job import CompileOptions
        opts = CompileOptions(commutative=False)
        assert CompileOptions.from_dict(opts.to_dict()) == opts
        # pre-1.6 payloads (no commutative field) still decode
        legacy = opts.to_dict()
        del legacy["commutative"]
        assert CompileOptions.from_dict(legacy).commutative is True
