"""Structured diagnostics, graceful degradation and runtime recovery."""

import pytest

from repro.diagnostics import (
    Diagnostic, DiagnosticSink, DiagnosableError, ERROR, NOTE, WARNING,
    diagnostic_of, severity_rank,
)
from repro.frontend import parse_and_analyze
from repro.frontend.sema import SemaError, analyze
from repro.interp import Machine, WatchdogTimeout
from repro.runtime import (
    ParallelError, RaceError, RecoveryEvent, run_parallel,
)
from repro.transform import QuarantinedLoop, TransformError, \
    expand_for_threads


def prepare(source, labels=("L",), **kwargs):
    program, sema = parse_and_analyze(source)
    base = Machine(program, sema)
    base.run()
    result = expand_for_threads(program, sema, list(labels), **kwargs)
    return base, result


DOALL_SRC = """
int buf[16];
int out[12];
int main(void) {
    int i; int k;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        out[i] = buf[15];
    }
    for (i = 0; i < 12; i++) print_int(out[i]);
    return 0;
}
"""

# loop A touches a heap structure (interleaved layout refuses it),
# loop B is array-only and transforms fine
TWO_LOOP_SRC = """
int n;
int buf[16];
int outa[8];
int outb[8];
int main(void) {
    int i; int k;
    n = 16;
    int* heap = malloc(n * sizeof(int));
    #pragma expand parallel(doall)
    A: for (i = 0; i < 8; i++) {
        for (k = 0; k < n; k++) heap[k] = i + k;
        outa[i] = heap[n - 1];
    }
    #pragma expand parallel(doall)
    B: for (i = 0; i < 8; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k;
        outb[i] = buf[15];
    }
    for (i = 0; i < 8; i++) print_int(outa[i]);
    for (i = 0; i < 8; i++) print_int(outb[i]);
    return 0;
}
"""


class TestDiagnosticPrimitives:
    def test_render_includes_context(self):
        d = Diagnostic("RT-RACE", ERROR, "boom", loop="L", loc=(3, 7))
        text = d.render()
        assert "RT-RACE" in text and "'L'" in text and "3:7" in text

    def test_sink_queries(self):
        sink = DiagnosticSink()
        sink.note("FAULT-SPAN", "injected", loop="L")
        sink.warning("PIPE-QUARANTINE", "quarantined", loop="A")
        sink.error("RT-RACE", "conflict", loop="A")
        assert len(sink) == 3
        assert sink.has_errors
        assert [d.code for d in sink.by_loop("A")] == \
            ["PIPE-QUARANTINE", "RT-RACE"]
        assert [d.code for d in sink.by_code("RT-")] == ["RT-RACE"]
        assert severity_rank(NOTE) < severity_rank(WARNING) < \
            severity_rank(ERROR)

    def test_empty_sink_is_still_used(self):
        """Regression: an empty sink is falsy (len 0) but must not be
        replaced by a fresh one inside the pipeline/runtime."""
        program, sema = parse_and_analyze(DOALL_SRC)
        sink = DiagnosticSink()
        expand_for_threads(program, sema, ["L", "NOPE"], strict=False,
                           sink=sink)
        assert len(sink) > 0

    def test_diagnosable_error_str_unchanged(self):
        exc = DiagnosableError("plain message", code="X-Y", loop="L")
        assert str(exc) == "plain message"
        assert exc.diagnostic.code == "X-Y"
        assert exc.diagnostic.loop == "L"

    def test_diagnostic_of_foreign_exception(self):
        diag = diagnostic_of(KeyError("nope"))
        assert diag.code == "RAW-KEYERROR"
        assert diag.severity == ERROR

    def test_sema_error_is_diagnosable(self):
        program, _ = (None, None)
        with pytest.raises(SemaError) as info:
            parse_and_analyze("int main(void) { return missing; }")
        diag = info.value.diagnostic
        assert diag.code.startswith("SEMA")
        assert diag.loc is not None


class TestPipelineDegradation:
    def test_strict_default_fails_fast(self):
        program, sema = parse_and_analyze(DOALL_SRC)
        with pytest.raises(KeyError):
            expand_for_threads(program, sema, ["NOPE"])

    def test_missing_label_quarantined_permissive(self):
        program, sema = parse_and_analyze(DOALL_SRC)
        sink = DiagnosticSink()
        result = expand_for_threads(program, sema, ["L", "NOPE"],
                                    strict=False, sink=sink)
        assert [q.label for q in result.quarantined] == ["NOPE"]
        assert result.quarantined[0].fallback == QuarantinedLoop.SEQUENTIAL
        assert [tl.loop.label for tl in result.loops] == ["L"]
        assert sink.by_code("PIPE-QUARANTINE")
        # the good loop still runs in parallel with correct output
        base = Machine(*parse_and_analyze(DOALL_SRC))
        base.run()
        outcome = run_parallel(result, 4, strict=False)
        assert outcome.output == base.output

    def test_transform_failure_quarantines_one_loop(self):
        """Interleaved layout rejects loop A's heap structure; loop B
        must still transform, and A runs under runtime privatization."""
        program, sema = parse_and_analyze(TWO_LOOP_SRC)
        with pytest.raises(TransformError):
            expand_for_threads(program, sema, ["A", "B"],
                               layout="interleaved")
        sink = DiagnosticSink()
        result = expand_for_threads(program, sema, ["A", "B"],
                                    layout="interleaved", strict=False,
                                    sink=sink)
        assert [(q.label, q.phase, q.fallback)
                for q in result.quarantined] == \
            [("A", "transform", QuarantinedLoop.RUNTIME_PRIV)]
        assert [tl.loop.label for tl in result.loops] == ["B"]
        base = Machine(*parse_and_analyze(TWO_LOOP_SRC))
        base.run()
        outcome = run_parallel(result, 4, strict=False)
        assert outcome.output == base.output
        # both loops executed all iterations (A via the priv fallback)
        assert outcome.loops["A"].iterations == 8
        assert outcome.loops["B"].iterations == 8

    def test_diagnostics_on_result(self):
        program, sema = parse_and_analyze(DOALL_SRC)
        result = expand_for_threads(program, sema, ["NOPE"], strict=False)
        assert any(d.code == "PIPE-QUARANTINE" for d in result.diagnostics)
        # nothing survived: the program degrades to untransformed
        assert result.program is not None
        assert result.loops == []


WATCHDOG_SRC = """
int main(void) {
    int i;
    int acc;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 100000; i++) { acc = acc + i; }
    print_int(acc);
    return 0;
}
"""


class TestWatchdog:
    def test_sequential_loop_budget(self):
        src = "int main(void) { int i; L: for (i = 0; i < 100000; i++) " \
              "{ } return 0; }"
        program, sema = parse_and_analyze(src)
        machine = Machine(program, sema, max_loop_steps=500)
        with pytest.raises(WatchdogTimeout) as info:
            machine.run()
        diag = info.value.diagnostic
        assert diag.code == "INTERP-WATCHDOG"
        assert diag.loop == "L"
        assert diag.data["budget"] == 500

    def test_parallel_loop_budget(self):
        program, sema = parse_and_analyze(WATCHDOG_SRC)
        result = expand_for_threads(program, sema, ["L"])
        with pytest.raises(WatchdogTimeout):
            run_parallel(result, 2, watchdog=1000)

    def test_generous_budget_passes(self):
        base, result = prepare(DOALL_SRC)
        outcome = run_parallel(result, 4, watchdog=10_000_000)
        assert outcome.output == base.output


class TestErrorAttribution:
    """Runtime errors carry loop label + source location (the
    _canonical_bounds failures used to lose them on nested calls)."""

    def test_noncanonical_loop_attributed(self):
        src = """
        int out[8];
        int main(void) {
            int i;
            i = 0;
            #pragma expand parallel(doall)
            L: while (i < 8) { out[i] = i; i = i + 1; }
            return 0;
        }
        """
        program, sema = parse_and_analyze(src)
        result = expand_for_threads(program, sema, ["L"])
        with pytest.raises(ParallelError) as info:
            run_parallel(result, 4)
        diag = info.value.diagnostic
        assert diag.code == "RT-NONCANONICAL"
        assert diag.loop == "L"
        assert diag.loc is not None and diag.loc[0] > 0

    def test_race_error_carries_data(self):
        base, result = prepare(DOALL_SRC)
        loop = result.loops[0].loop
        from repro.frontend import ast as A
        loop.body.stmts.append(A.ExprStmt(A.Assign(
            "=", A.Ident("out"), A.IntLit(1)
        )))
        # (not executable as-is; just check RaceError shape directly)
        exc = RaceError("conflicts", loop="L", data={"races": [(1, "w")]})
        assert exc.diagnostic.code == "RT-RACE"
        assert exc.diagnostic.data["races"]


def _sabotage(result):
    """Make the transformed loop body write one shared location from
    every iteration (a genuine under-privatization race)."""
    from repro.frontend import ast as A
    loop = result.loops[0].loop
    loop.body.stmts.append(A.ExprStmt(A.Assign(
        "=", A.Ident("shared"), A.IntLit(1)
    )))
    result.sema = analyze(result.program)


RACY_SRC = """
int shared;
int out[8];
int main(void) {
    int i;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 8; i++) {
        out[i] = i;
    }
    print_int(out[7]);
    return 0;
}
"""


class TestRaceRecovery:
    def test_strict_raises(self):
        program, sema = parse_and_analyze(RACY_SRC)
        result = expand_for_threads(program, sema, ["L"])
        _sabotage(result)
        with pytest.raises(RaceError):
            run_parallel(result, 4)

    def test_permissive_recovers_sequentially(self):
        program, sema = parse_and_analyze(RACY_SRC)
        base = Machine(program, sema)
        base.run()
        result = expand_for_threads(program, sema, ["L"])
        _sabotage(result)
        sink = DiagnosticSink()
        outcome = run_parallel(result, 4, strict=False, sink=sink)
        assert outcome.output == base.output
        assert len(outcome.recoveries) == 1
        event = outcome.recoveries[0]
        assert isinstance(event, RecoveryEvent)
        assert event.label == "L"
        assert event.diagnostic.code == "RT-RACE"
        assert event.races  # the aborted attempt's conflicts
        assert sink.by_code("RT-RECOVERED")
        # recovered races do not count as unrecovered outcome races
        assert outcome.races == []

    def test_recovery_rolls_back_partial_state(self):
        """The failed parallel attempt's stores must not leak into the
        sequential re-execution (memory snapshot restore)."""
        src = """
        int shared;
        int out[8];
        int main(void) {
            int i;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 8; i++) {
                out[i] = out[i] + i + 1;
            }
            for (i = 0; i < 8; i++) print_int(out[i]);
            return 0;
        }
        """
        program, sema = parse_and_analyze(src)
        base = Machine(program, sema)
        base.run()
        result = expand_for_threads(program, sema, ["L"])
        _sabotage(result)
        outcome = run_parallel(result, 4, strict=False)
        # out[i] += ... ran exactly once per index despite the retry
        assert outcome.output == base.output
