"""Printer round-trip tests: printed programs re-parse to behaviourally
identical programs (checked by running both)."""

import pytest

from repro.bench import all_benchmarks
from repro.frontend import parse_and_analyze, print_program
from repro.interp import Machine
from repro.transform import expand_for_threads

SAMPLES = [
    # operator precedence / parenthesization
    """
    int main(void) {
        int a = 2; int b = 3; int c = 4;
        print_int(a + b * c);
        print_int((a + b) * c);
        print_int(a << b | c);
        print_int(a < b == 1);
        print_int(-a * b);
        print_int(a - (b - c));
        print_int(a ? b : c ? 1 : 2);
        return 0;
    }
    """,
    # declarations, structs, loops
    """
    struct p { int x; int y; };
    int tab[3] = {9, 8, 7};
    int main(void) {
        struct p q;
        int i;
        q.x = 0;
        for (i = 0; i < 3; i++) q.x += tab[i];
        do { q.x--; } while (q.x > 20);
        while (q.x > 10) { q.x -= 2; }
        print_int(q.x);
        return 0;
    }
    """,
    # pointers, casts, sizeof, strings
    """
    int main(void) {
        int *p = (int*)malloc(2 * sizeof(int));
        short *s = (short*)p;
        s[1] = 258;
        print_int(p[0] >> 16);
        print_str("x\\ny");
        free(p);
        return 0;
    }
    """,
]


def roundtrip_outputs(source):
    program, sema = parse_and_analyze(source)
    m1 = Machine(program, sema)
    m1.run()
    printed = print_program(program)
    program2, sema2 = parse_and_analyze(printed)
    m2 = Machine(program2, sema2)
    m2.run()
    return m1.output, m2.output, printed


@pytest.mark.parametrize("source", SAMPLES)
def test_roundtrip_behaviour(source):
    out1, out2, _ = roundtrip_outputs(source)
    assert out1 == out2


def test_print_is_idempotent():
    program, _ = parse_and_analyze(SAMPLES[1])
    once = print_program(program)
    program2, _ = parse_and_analyze(once)
    twice = print_program(program2)
    assert once == twice


@pytest.mark.parametrize(
    "name", [s.name for s in all_benchmarks()]
)
def test_benchmark_kernels_roundtrip(name):
    from repro.bench import get
    out1, out2, _ = roundtrip_outputs(get(name).source)
    assert out1 == out2


def test_transformed_program_roundtrips():
    """Printed transformed code re-parses and still behaves (the VLA
    syntax, fat structs, and __tid references survive printing)."""
    source = """
    int buf[4];
    int out[3];
    int main(void) {
        int i; int k;
        #pragma expand parallel(doall)
        L: for (i = 0; i < 3; i++) {
            for (k = 0; k < 4; k++) buf[k] = i + k;
            out[i] = buf[3];
        }
        print_int(out[2]);
        return 0;
    }
    """
    program, sema = parse_and_analyze(source)
    result = expand_for_threads(program, sema, ["L"])
    printed = print_program(result.program)
    program2, sema2 = parse_and_analyze(printed)
    machine = Machine(program2, sema2)
    machine.nthreads = 1
    machine.run()
    base = Machine(program, sema)
    base.run()
    assert machine.output == base.output
