"""Semantic analysis unit tests."""

import pytest

from repro.frontend import ast, parse, parse_and_analyze
from repro.frontend.ctypes import DOUBLE, INT, LONG, PointerType
from repro.frontend.sema import SemaError, analyze


def check(source):
    return parse_and_analyze(source)


def expr_type(expr_text, prelude=""):
    program, _ = check(
        f"{prelude}\nint main(void) {{ {expr_text}; return 0; }}"
    )
    stmt = program.function("main").body.stmts[0]
    return stmt.expr.ctype


class TestScoping:
    def test_undeclared_identifier(self):
        with pytest.raises(SemaError, match="undeclared"):
            check("int main(void) { return zzz; }")

    def test_global_visible_in_function(self):
        program, _ = check("int g; int main(void) { return g; }")
        ret = program.function("main").body.stmts[0]
        assert isinstance(ret.expr.decl, ast.VarDecl)
        assert ret.expr.decl.storage == "global"

    def test_shadowing_resolves_to_inner(self):
        program, _ = check(
            "int x; int main(void) { int x; x = 1; return x; }"
        )
        stmt = program.function("main").body.stmts[1]
        assert stmt.expr.target.decl.storage == "local"

    def test_block_scope_ends(self):
        with pytest.raises(SemaError, match="undeclared"):
            check("int main(void) { { int y; } return y; }")

    def test_redeclaration_same_scope_rejected(self):
        with pytest.raises(SemaError, match="redeclaration"):
            check("int main(void) { int a; int a; return 0; }")

    def test_param_visible_in_body(self):
        check("int f(int a) { return a + 1; } int main(void) { return f(1); }")

    def test_function_redefinition_rejected(self):
        with pytest.raises(SemaError, match="redefinition"):
            check("int f(void) { return 0; } int f(void) { return 1; }")

    def test_prototype_then_definition_ok(self):
        check("int f(void); int f(void) { return 1; } "
              "int main(void) { return f(); }")

    def test_forward_call_via_two_pass(self):
        check("int main(void) { return f(); } int f(void) { return 3; }")


class TestThreadContext:
    def test_tid_and_nthreads_predeclared(self):
        program, sema = check("int main(void) { return __tid + __nthreads; }")
        assert "__tid" in sema.thread_context

    def test_thread_context_is_int(self):
        assert expr_type("__tid + 0") == INT


class TestTypes:
    def test_int_literal_type(self):
        assert expr_type("1 + 1") == INT

    def test_big_literal_is_long(self):
        assert expr_type("4294967296 + 0") == LONG

    def test_float_promotes(self):
        assert expr_type("1 + 2.0") == DOUBLE

    def test_pointer_arith_type(self):
        t = expr_type("p + 1", "int *p;")
        assert t == PointerType(INT)

    def test_pointer_difference_is_long(self):
        assert expr_type("p - q", "int *p; int *q;") == LONG

    def test_comparison_is_int(self):
        assert expr_type("1.5 < 2.5") == INT

    def test_deref_type(self):
        assert expr_type("*p + 0", "int *p;") == INT

    def test_address_of_type(self):
        assert expr_type("&g == 0", "int g;") == INT

    def test_index_of_2d_array(self):
        t = expr_type("a[1][2] + 0", "int a[3][4];")
        assert t == INT

    def test_member_type(self):
        t = expr_type("s.d + 0", "struct t { int i; double d; }; struct t s;")
        assert t == DOUBLE

    def test_arrow_type(self):
        t = expr_type(
            "p->next == 0",
            "struct n { int v; struct n *next; }; struct n *p;",
        )
        assert t == INT

    def test_sizeof_is_long(self):
        assert expr_type("sizeof(int)") == LONG


class TestTypeErrors:
    @pytest.mark.parametrize("snippet,prelude", [
        ("*x", "int x;"),                       # deref of non-pointer
        ("s.nope", "struct t { int a; }; struct t s;"),
        ("x->a", "struct t { int a; }; struct t x;"),
        ("x()", "int x;"),                      # call non-function
        ("f(1, 2)", "int f(int a);"),           # arity
        ("x % 1.5", "double x;"),               # float modulo
        ("5 = 1", ""),                          # not an lvalue
        ("&(a + b)", "int a; int b;"),          # & of rvalue
        ("x.a = 1", "int x;"),                  # . on non-struct
    ])
    def test_rejected(self, snippet, prelude):
        with pytest.raises(SemaError):
            check(f"{prelude}\nint main(void) {{ {snippet}; return 0; }}")

    def test_unknown_function(self):
        with pytest.raises(SemaError, match="unknown function"):
            check("int main(void) { zorp(1); return 0; }")

    def test_struct_assign_mismatch(self):
        with pytest.raises(SemaError):
            check(
                "struct a { int x; }; struct b { int y; };"
                "struct a u; struct b v;"
                "int main(void) { u = v; return 0; }"
            )

    def test_void_variable_rejected(self):
        with pytest.raises(SemaError):
            check("void v; int main(void) { return 0; }")

    def test_return_type_mismatch(self):
        with pytest.raises(SemaError):
            check("struct s { int a; }; struct s g;"
                  "int main(void) { return g; }")


class TestBuiltins:
    def test_malloc_signature(self):
        check("int main(void) { int *p = (int*)malloc(8); free(p); return 0; }")

    def test_builtin_arity_checked(self):
        with pytest.raises(SemaError):
            check("int main(void) { malloc(1, 2); return 0; }")

    def test_user_function_shadows_builtin(self):
        check("int abs(int x) { return x; } int main(void) { return abs(-1); }")

    def test_memcpy_void_pointers(self):
        check("int main(void) { int a[2]; int b[2];"
              " memcpy(a, b, sizeof(a)); return 0; }")


class TestReanalysis:
    def test_analyze_is_repeatable(self):
        """The pipeline re-runs sema after each transform stage."""
        program = parse(
            "struct n { int v; struct n *next; }; int g = 3;"
            "int main(void) { struct n x; x.v = g; return x.v; }"
        )
        analyze(program)
        analyze(program)
        sema = analyze(program)
        assert "main" in sema.functions
