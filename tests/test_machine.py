"""Interpreter semantics tests: every C behaviour the transform and the
benchmark kernels rely on, checked against ground truth."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import InterpError, Machine, run_source
from repro.interp.memory import MemoryError_
from repro.frontend import parse_and_analyze


def run(source):
    return run_source(source)


def out_of(body, prelude=""):
    machine = run(f"{prelude}\nint main(void) {{ {body} return 0; }}")
    return machine.output


def one_int(expr, prelude="", setup=""):
    return int(out_of(f"{setup} print_int({expr});", prelude)[0])


class TestIntegerArithmetic:
    def test_division_truncates_toward_zero(self):
        assert one_int("-7 / 2") == -3
        assert one_int("7 / -2") == -3

    def test_modulo_sign_follows_dividend(self):
        assert one_int("-7 % 3") == -1
        assert one_int("7 % -3") == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpError, match="division by zero"):
            run("int main(void) { int z = 0; print_int(1 / z); return 0; }")

    def test_signed_overflow_wraps(self):
        assert one_int("x + 1", setup="int x = 2147483647;") == -2147483648

    def test_unsigned_wraps(self):
        assert one_int("(int)(x - 2)", setup="unsigned int x = 1;") == -1

    def test_logical_shift_on_unsigned(self):
        assert one_int("(int)(x >> 28)",
                       setup="unsigned int x = 0x80000000;") == 8

    def test_arithmetic_shift_on_signed(self):
        assert one_int("x >> 1", setup="int x = -8;") == -4

    def test_bitwise_ops(self):
        assert one_int("(0xF0 | 0x0F) ^ 0xFF") == 0
        assert one_int("~0") == -1

    def test_short_circuit_and(self):
        src = """
        int hits = 0;
        int bump(void) { hits++; return 1; }
        int main(void) {
            int r = 0 && bump();
            print_int(r); print_int(hits);
            return 0;
        }
        """
        assert run(src).output == ["0", "0"]

    def test_short_circuit_or(self):
        src = """
        int hits = 0;
        int bump(void) { hits++; return 1; }
        int main(void) {
            int r = 1 || bump();
            print_int(r); print_int(hits);
            return 0;
        }
        """
        assert run(src).output == ["1", "0"]

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_add_matches_python(self, a, b):
        assert one_int(f"({a}) + ({b})") == a + b

    @given(st.integers(-1000, 1000), st.integers(1, 100))
    @settings(max_examples=25, deadline=None)
    def test_divmod_matches_c(self, a, b):
        q = one_int(f"({a}) / ({b})")
        r = one_int(f"({a}) % ({b})")
        assert q == int(a / b)
        assert r == a - q * b


class TestFloats:
    def test_double_arithmetic(self):
        assert out_of("print_double(0.5 * 4.0 + 1.0);") == ["3"]

    def test_float_truncation_on_store(self):
        assert out_of(
            "float f; f = 0.1; print_int(f == 0.1 ? 1 : 0);"
        ) == ["0"]

    def test_int_to_double_conversion(self):
        assert out_of("double d; d = 3; print_double(d / 2);") == ["1.5"]

    def test_double_to_int_truncates(self):
        assert one_int("(int)2.9") == 2
        assert one_int("(int)-2.9") == -2

    def test_math_builtins(self):
        assert out_of("print_double(sqrt(9.0));") == ["3"]
        assert out_of("print_double(pow(2.0, 10.0));") == ["1024"]
        assert out_of("print_double(fabs(-2.5));") == ["2.5"]


class TestControlFlow:
    def test_for_loop_sum(self):
        assert one_int(
            "acc", setup="int i; int acc = 0; for (i=1;i<=10;i++) acc += i;"
        ) == 55

    def test_while_with_break(self):
        body = "int i = 0; while (1) { i++; if (i == 5) break; }"
        assert one_int("i", setup=body) == 5

    def test_continue_skips(self):
        body = ("int i; int acc = 0; for (i=0;i<10;i++) "
                "{ if (i % 2) continue; acc += i; }")
        assert one_int("acc", setup=body) == 20

    def test_do_while_runs_once(self):
        assert one_int("n", setup="int n = 0; do n++; while (0);") == 1

    def test_nested_break_only_inner(self):
        body = ("int i; int j; int acc = 0;"
                "for (i=0;i<3;i++) { for (j=0;j<10;j++) "
                "{ if (j==2) break; acc++; } }")
        assert one_int("acc", setup=body) == 6

    def test_recursion(self):
        src = """
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main(void) { print_int(fib(12)); return 0; }
        """
        assert run(src).output == ["144"]

    def test_stack_overflow_detected(self):
        src = "int f(int n) { return f(n); } int main(void) { return f(1); }"
        with pytest.raises(InterpError, match="stack overflow"):
            run(src)

    def test_exit_builtin(self):
        machine = run(
            "int main(void) { print_int(1); exit(7); print_int(2); return 0; }"
        )
        assert machine.exit_code == 7 and machine.output == ["1"]


class TestPointersAndMemory:
    def test_address_of_and_deref(self):
        assert one_int("*p", setup="int x = 9; int *p = &x;") == 9

    def test_write_through_pointer(self):
        assert one_int("x", setup="int x = 1; int *p = &x; *p = 42;") == 42

    def test_pointer_arithmetic_scales(self):
        setup = "int a[4]; int *p = a; a[2] = 7;"
        assert one_int("*(p + 2)", setup=setup) == 7

    def test_pointer_difference(self):
        setup = "int a[8]; int *p = &a[6]; int *q = &a[1];"
        assert one_int("(int)(p - q)", setup=setup) == 5

    def test_pointer_compound_assignment(self):
        setup = "int a[4]; int *p = a; a[3] = 5; p += 3;"
        assert one_int("*p", setup=setup) == 5

    def test_pointer_increment_walks_elements(self):
        setup = ("int a[3]; int *p = a; a[0]=1; a[1]=2; a[2]=3;"
                 "int s = 0; int i; for (i=0;i<3;i++) { s += *p; p++; }")
        assert one_int("s", setup=setup) == 6

    def test_null_dereference_raises(self):
        with pytest.raises(MemoryError_, match="NULL"):
            run("int main(void) { int *p = 0; return *p; }")

    def test_out_of_bounds_raises(self):
        with pytest.raises(MemoryError_):
            run("int main(void) { int *p = (int*)malloc(8);"
                " p[5] = 1; return 0; }")

    def test_use_after_free_raises(self):
        with pytest.raises(MemoryError_):
            run("int main(void) { int *p = (int*)malloc(8); free(p);"
                " return p[0]; }")

    def test_double_free_raises(self):
        with pytest.raises(MemoryError_):
            run("int main(void) { int *p = (int*)malloc(8); free(p);"
                " free(p); return 0; }")

    def test_free_null_ok(self):
        run("int main(void) { free(0); return 0; }")

    def test_realloc_preserves_prefix(self):
        setup = ("int *p = (int*)malloc(2 * sizeof(int)); p[0]=1; p[1]=2;"
                 "p = (int*)realloc(p, 4 * sizeof(int)); p[3] = 4;")
        assert one_int("p[0] + p[1] + p[3]", setup=setup) == 7

    def test_calloc_zeroes(self):
        setup = "int *p = (int*)calloc(4, sizeof(int));"
        assert one_int("p[0] + p[3]", setup=setup) == 0

    def test_recast_short_int_little_endian(self):
        """The bzip2 zptr pattern: byte-accurate layout."""
        setup = ("int *zp = (int*)malloc(8); short *sp = (short*)zp;"
                 "zp[0] = 0x00020001;")
        assert one_int("sp[0]", setup=setup) == 1
        assert one_int("sp[1]", setup=setup) == 2

    def test_recast_write_short_read_int(self):
        setup = ("int *zp = (int*)malloc(4); short *sp = (short*)zp;"
                 "sp[0] = 3; sp[1] = 4;")
        assert one_int("zp[0]", setup=setup) == 3 + (4 << 16)

    def test_char_array_and_strlen(self):
        setup = 'char s[8]; memcpy(s, "abc", 4);'
        assert one_int("(int)strlen(s)", setup=setup) == 3

    def test_memset_fills(self):
        setup = "int a[4]; memset(a, 0xFF, sizeof(a));"
        assert one_int("a[3]", setup=setup) == -1


class TestStructs:
    PRELUDE = "struct pt { int x; int y; };"

    def test_member_assignment(self):
        assert one_int("p.x + p.y", self.PRELUDE,
                       "struct pt p; p.x = 3; p.y = 4;") == 7

    def test_struct_copy_by_value(self):
        setup = "struct pt a; struct pt b; a.x = 1; a.y = 2; b = a; a.x = 99;"
        assert one_int("b.x + b.y", self.PRELUDE, setup) == 3

    def test_struct_passed_by_value(self):
        src = self.PRELUDE + """
        int sum(struct pt p) { p.x = 99; return p.x + p.y; }
        int main(void) {
            struct pt a; a.x = 1; a.y = 5;
            print_int(sum(a));
            print_int(a.x);
            return 0;
        }
        """
        assert run(src).output == ["104", "1"]

    def test_arrow_through_malloc(self):
        setup = ("struct pt *p = (struct pt*)malloc(sizeof(struct pt));"
                 "p->x = 10; p->y = 20;")
        assert one_int("p->x + p->y", self.PRELUDE, setup) == 30

    def test_linked_list_walk(self):
        src = """
        struct n { int v; struct n *next; };
        int main(void) {
            struct n *head = 0;
            int i;
            for (i = 0; i < 5; i++) {
                struct n *x = (struct n*)malloc(sizeof(struct n));
                x->v = i; x->next = head; head = x;
            }
            int s = 0;
            while (head) { s = s * 10 + head->v; head = head->next; }
            print_int(s);
            return 0;
        }
        """
        assert run(src).output == ["43210"]

    def test_array_of_structs(self):
        setup = ("struct pt a[3]; int i;"
                 "for (i=0;i<3;i++) { a[i].x = i; a[i].y = i * 10; }")
        assert one_int("a[2].x + a[2].y", self.PRELUDE, setup) == 22

    def test_struct_return_value(self):
        src = self.PRELUDE + """
        struct pt make(int x, int y) {
            struct pt p; p.x = x; p.y = y; return p;
        }
        int main(void) {
            struct pt q; q = make(4, 5);
            print_int(q.x * 10 + q.y);
            return 0;
        }
        """
        assert run(src).output == ["45"]


class TestGlobalsAndInit:
    def test_global_initializers_order(self):
        src = "int a = 3; int b = 4; int main(void) { return 0; }"
        machine = run(src)
        assert machine.exit_code == 0

    def test_global_array_init(self):
        assert one_int("w[0] + w[3]", "int w[4] = {1, 2, 3, 4};") == 5

    def test_global_struct_init(self):
        assert one_int(
            "g.x * 10 + g.y",
            "struct pt { int x; int y; }; struct pt g = {7, 8};",
        ) == 78

    def test_global_double_array(self):
        assert out_of(
            "print_double(w[1]);", "double w[2] = {0.25, 0.75};"
        ) == ["0.75"]

    def test_uninitialized_global_is_zero(self):
        assert one_int("g", "int g;") == 0

    def test_string_literal(self):
        assert out_of('print_str("hello world");') == ["hello world"]


class TestVLA:
    def test_vla_allocation_and_access(self):
        """The machinery behind Table 1's local expansion."""
        program, sema = parse_and_analyze(
            "int main(void) { int k; k = 3; print_int(k); return 0; }"
        )
        # manually convert k to a VLA of __nthreads copies, like expand.py
        machine = Machine(program, sema)
        machine.nthreads = 4
        machine.run()
        assert machine.output == ["3"]


class TestCostModel:
    def test_cycles_accumulate(self):
        machine = run("int main(void) { int i; int s = 0;"
                      " for (i=0;i<100;i++) s += i; return s; }")
        assert machine.cost.cycles > 100
        assert machine.cost.instructions > 300

    def test_memory_loads_counted(self):
        machine = run("int main(void) { int *p = (int*)malloc(40); int i;"
                      " for (i=0;i<10;i++) p[i] = i;"
                      " int s = 0; for (i=0;i<10;i++) s += p[i];"
                      " return s; }")
        assert machine.cost.loads >= 10
        assert machine.cost.stores >= 10

    def test_register_slots_not_counted_as_memory(self):
        machine = run("int main(void) { int a = 0; int i;"
                      " for (i=0;i<50;i++) a += 2; return a; }")
        # local scalar traffic stays out of the load/store counters
        assert machine.cost.loads < 10
