"""Unit tests for the §3.4 optimization machinery: dirty-variable
analysis, LICM of global loads, hoist placement."""

from repro.frontend import ast, parse_and_analyze, print_program
from repro.frontend.sema import analyze
from repro.interp import Machine
from repro.transform.optimize import (
    build_parent_blocks, collect_dirty_decls, licm_globals,
)
from repro.transform.rewrite import clone_program


def body_of(source, fn="main"):
    program, sema = parse_and_analyze(source)
    return program, program.function(fn).body


class TestDirtyDecls:
    def decls_named(self, program, *names):
        found = {}
        for node in program.walk():
            if isinstance(node, ast.VarDecl):
                found[node.name] = node
        return [found[n] for n in names]

    def test_direct_assignment_dirty(self):
        program, body = body_of(
            "int main(void) { int a; int b; a = 1; b = a; return b; }"
        )
        a, b = self.decls_named(program, "a", "b")
        dirty = collect_dirty_decls(body)
        assert a in dirty and b in dirty

    def test_write_through_pointer_not_dirty(self):
        program, body = body_of("""
        int main(void) {
            int x;
            int *p = &x;
            p[0] = 5;
            *p = 6;
            return x;
        }
        """)
        (p,) = self.decls_named(program, "p")
        dirty = collect_dirty_decls(body)
        assert p not in dirty  # p's VALUE never changes after init

    def test_increment_dirty(self):
        program, body = body_of(
            "int main(void) { int i; i = 0; i++; return i; }"
        )
        (i,) = self.decls_named(program, "i")
        assert i in collect_dirty_decls(body)

    def test_member_write_dirties_struct_var(self):
        program, body = body_of("""
        struct s { int a; };
        int main(void) { struct s v; v.a = 1; return v.a; }
        """)
        (v,) = self.decls_named(program, "v")
        assert v in collect_dirty_decls(body)

    def test_address_taken_dirty(self):
        program, body = body_of("""
        int main(void) { int x; int *p = &x; *p = 3; return x; }
        """)
        (x,) = self.decls_named(program, "x")
        assert x in collect_dirty_decls(body)


class TestLicmGlobals:
    def run_both(self, source):
        program, sema = parse_and_analyze(source)
        base = Machine(program, sema)
        base.run()
        clone, _ = clone_program(program)
        moved = licm_globals(clone)
        new_sema = analyze(clone)
        machine = Machine(clone, new_sema)
        machine.run()
        assert machine.output == base.output
        return moved, machine, base, print_program(clone)

    def test_hoists_readonly_global(self):
        moved, machine, base, text = self.run_both("""
        int scale;
        int main(void) {
            int i; int acc = 0;
            scale = 7;
            for (i = 0; i < 20; i++) {
                acc += scale * i;
            }
            print_int(acc);
            return 0;
        }
        """)
        assert moved >= 1
        assert "__licm" in text
        assert machine.cost.cycles < base.cost.cycles  # load hoisted

    def test_skips_global_written_in_loop(self):
        moved, _, _, text = self.run_both("""
        int acc;
        int main(void) {
            int i;
            for (i = 0; i < 5; i++) {
                acc = acc + i;
            }
            print_int(acc);
            return 0;
        }
        """)
        assert "acc = __licm" not in text

    def test_skips_global_written_by_callee(self):
        moved, _, _, text = self.run_both("""
        int counter;
        void bump(void) { counter = counter + 1; }
        int main(void) {
            int i;
            for (i = 0; i < 5; i++) {
                bump();
                print_int(counter);
            }
            return 0;
        }
        """)
        # counter must NOT be cached across bump() calls
        assert "counter" in text
        assert "int __licm1 = counter" not in text

    def test_transitive_callee_writes_respected(self):
        moved, _, _, text = self.run_both("""
        int g;
        void inner(void) { g = g + 1; }
        void outer(void) { inner(); }
        int main(void) {
            int i;
            for (i = 0; i < 4; i++) {
                outer();
                print_int(g);
            }
            return 0;
        }
        """)
        assert "int __licm1 = g" not in text

    def test_address_taken_global_not_hoisted(self):
        moved, _, _, text = self.run_both("""
        int knob;
        int main(void) {
            int i; int acc = 0;
            int *p = &knob;
            knob = 3;
            for (i = 0; i < 5; i++) {
                *p = i;
                acc += knob;
            }
            print_int(acc);
            return 0;
        }
        """)
        assert "= knob;" not in text.split("for")[1].split("{")[1] \
            or "__licm" not in text


class TestParentBlocks:
    def test_maps_loops_to_blocks(self):
        program, _ = body_of("""
        int main(void) {
            int i; int j;
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 3; j++) { }
            }
            return 0;
        }
        """)
        parents = build_parent_blocks(program)
        loops = [n for n in program.walk() if isinstance(n, ast.LoopStmt)]
        outer = loops[0]
        assert parents[outer] is program.function("main").body
