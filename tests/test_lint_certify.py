"""LINT-CERT: the independent certificate checker re-proves every
claim on the output IR, and the commutativity-breaking mutator is
caught statically at a 100% per-update rate."""

import json

import pytest

from repro.bench import all_benchmarks, get
from repro.frontend import parse_and_analyze
from repro.lint import run_lint
from repro.lint.mutate import break_commutativity
from repro.transform import expand_for_threads


def _expand(source, labels=("L",), **kwargs):
    program, sema = parse_and_analyze(source)
    return expand_for_threads(program, sema, list(labels), **kwargs)


def _histogram(**kwargs):
    return _expand(get("histogram").source, **kwargs)


def _update_origins(result):
    return [u["origin"]
            for tl in result.loops if tl.certificate
            for red in tl.certificate["reductions"]
            for u in red["updates"]]


@pytest.mark.parametrize("name",
                         [s.name for s in all_benchmarks()])
def test_every_kernel_certificate_verifies(name):
    spec = get(name)
    result = _expand(spec.source, spec.loop_labels)
    report = run_lint(result, codes=["LINT-CERT"])
    assert report.clean, report.render()
    assert report.certificates
    assert all(c["verdict"] == "verified"
               for c in report.certificates)


def test_certificate_lists_reduction_ops():
    report = run_lint(_histogram(), codes=["LINT-CERT"])
    (cert,) = report.certificates
    assert {r["op"] for r in cert["reductions"]} == {"add", "max"}


def test_prover_off_means_no_certificates():
    report = run_lint(_histogram(commutative=False),
                      codes=["LINT-CERT"])
    assert report.clean and not report.certificates


def test_missing_certificate_is_an_error():
    result = _histogram()
    for tl in result.loops:
        tl.certificate = None
    report = run_lint(result, codes=["LINT-CERT"])
    assert report.by_code("LINT-CERT")
    assert report.certificates[0]["verdict"] == "missing"


def test_schema_mismatch_is_an_error():
    result = _histogram()
    result.loops[0].certificate["schema"] += 1
    report = run_lint(result, codes=["LINT-CERT"])
    assert report.by_code("LINT-CERT")


def test_forged_partition_is_caught():
    result = _histogram()
    cert = result.loops[0].certificate
    # move one site into a different class: BFS re-derivation disagrees
    cert["classes"][0]["members"].append(
        cert["classes"][1]["members"].pop())
    report = run_lint(result, codes=["LINT-CERT"])
    assert report.by_code("LINT-CERT")


def test_forged_category_is_caught():
    result = _histogram()
    cert = result.loops[0].certificate
    forged = next(c for c in cert["classes"]
                  if c["category"] == "commutative")
    forged["category"] = "private"
    for site in forged["members"]:
        cert["sites"][str(site)] = "private"
    report = run_lint(result, codes=["LINT-CERT"])
    assert report.by_code("LINT-CERT")


def test_forged_identity_is_caught():
    result = _histogram()
    cert = result.loops[0].certificate
    cert["reductions"][1]["identity"] += 5
    report = run_lint(result, codes=["LINT-CERT"])
    assert report.by_code("LINT-CERT")


def test_mutation_catch_rate_is_100_percent():
    """Every certified update, broken one at a time into a
    non-commutative RMW, must trip LINT-CERT."""
    n_updates = len(_update_origins(_histogram()))
    assert n_updates == 3
    caught = 0
    for k in range(n_updates):
        result = _histogram()  # fresh IR: nids are process-global
        origin = _update_origins(result)[k]
        assert break_commutativity(result.program,
                                   origins={origin}) >= 1
        report = run_lint(result, codes=["LINT-CERT"])
        caught += bool(report.by_code("LINT-CERT"))
    assert caught == n_updates


def test_blanket_mutation_caught_and_counted():
    result = _histogram()
    count = break_commutativity(result.program)
    assert count >= 3
    report = run_lint(result, codes=["LINT-CERT"])
    assert report.by_code("LINT-CERT")
    assert report.certificates[0]["verdict"] == "failed"


class TestCliJson:
    def test_json_to_stdout(self, capsys):
        from repro.cli import main
        assert main(["lint", "--bench", "histogram", "--json",
                     "--fail-on-warning"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (rep,) = payload["reports"]
        assert rep["title"] == "histogram"
        assert rep["clean"] and payload["findings"] == 0
        (cert,) = rep["certificates"]
        assert cert["verdict"] == "verified"
        assert {r["op"] for r in cert["reductions"]} == {"add", "max"}

    def test_json_to_file_with_findings(self, tmp_path, capsys):
        from repro.cli import main
        source = get("histogram").source + "\n// trailing\n"
        src = tmp_path / "histo.c"
        src.write_text(source)
        out = tmp_path / "lint.json"
        # uninitialized-read warnings etc. may or may not appear; the
        # point is the report file is written and well-formed
        main(["lint", str(src), "--json", str(out)])
        payload = json.loads(out.read_text())
        assert payload["reports"][0]["rules_run"] > 0
        for finding in payload["reports"][0]["findings"]:
            assert {"code", "severity", "message"} <= set(finding)

    def test_json_records_findings(self, tmp_path, capsys):
        from repro.cli import main
        from repro.bench import get as get_spec
        import repro.lint.mutate  # noqa: F401  (sanity: module loads)
        src = tmp_path / "histo.c"
        src.write_text(get_spec("histogram").source)
        # sabotage via --no-commutative is clean; instead check a rule
        # subset still shapes the JSON correctly
        assert main(["lint", str(src), "--rule", "LINT-CERT",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reports"][0]["rules_run"] == 1
