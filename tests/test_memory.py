"""Memory model unit + property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp.memory import (
    GLOBAL, HEAP, Memory, MemoryError_, STACK,
)


class TestAllocation:
    def test_alloc_returns_aligned_nonnull(self):
        mem = Memory()
        addr = mem.alloc(10)
        assert addr >= 4096 and addr % 8 == 0

    def test_distinct_allocations_disjoint(self):
        mem = Memory()
        a = mem.alloc(16)
        b = mem.alloc(16)
        assert b >= a + 16 or a >= b + 16

    def test_zero_size_allocation_gets_a_byte(self):
        mem = Memory()
        addr = mem.alloc(0)
        assert mem.find(addr).size == 1

    def test_negative_size_raises(self):
        with pytest.raises(MemoryError_):
            Memory().alloc(-1)

    def test_find_interior_address(self):
        mem = Memory()
        addr = mem.alloc(32)
        record = mem.find(addr + 17)
        assert record is not None and record.addr == addr

    def test_find_outside_returns_none(self):
        mem = Memory()
        mem.alloc(8)
        assert mem.find(10) is None  # inside the null guard page

    def test_labels_and_tags(self):
        mem = Memory()
        addr = mem.alloc(8, HEAP, label="zptr", tag=1234)
        record = mem.find(addr)
        assert record.label == "zptr" and record.tag == 1234


class TestFree:
    def test_free_marks_dead(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.free(addr)
        assert not mem.find(addr).live

    def test_free_interior_raises(self):
        mem = Memory()
        addr = mem.alloc(16)
        with pytest.raises(MemoryError_):
            mem.free(addr + 4)

    def test_free_of_global_raises(self):
        mem = Memory()
        addr = mem.alloc(8, GLOBAL)
        with pytest.raises(MemoryError_):
            mem.free(addr)

    def test_free_null_is_noop(self):
        Memory().free(0)

    def test_heap_address_reuse(self):
        """Deliberate fidelity: freed heap addresses are reused
        (same-size first), which is what creates the loop-carried
        dependences of the paper's dijkstra story."""
        mem = Memory()
        a = mem.alloc(24, HEAP)
        mem.free(a)
        b = mem.alloc(24, HEAP)
        assert b == a

    def test_reuse_requires_same_size(self):
        mem = Memory()
        a = mem.alloc(24, HEAP)
        mem.free(a)
        b = mem.alloc(32, HEAP)
        assert b != a

    def test_reused_block_zeroed(self):
        mem = Memory()
        a = mem.alloc(8, HEAP)
        mem.write_bytes(a, b"\xff" * 8)
        mem.free(a)
        b = mem.alloc(8, HEAP)
        assert mem.read_bytes(b, 8) == b"\0" * 8

    def test_stack_release(self):
        mem = Memory()
        addr = mem.alloc(8, STACK)
        record = mem.find(addr)
        mem.release_stack([record])
        assert not record.live


class TestRealloc:
    def test_realloc_grows_and_copies(self):
        mem = Memory()
        addr = mem.alloc(8, HEAP)
        mem.write_bytes(addr, b"12345678")
        new = mem.realloc(addr, 16)
        assert mem.read_bytes(new, 8) == b"12345678"
        assert not mem.find(addr).live or new == addr

    def test_realloc_null_is_malloc(self):
        mem = Memory()
        addr = mem.realloc(0, 8)
        assert mem.find(addr).live

    def test_realloc_shrinks(self):
        mem = Memory()
        addr = mem.alloc(16, HEAP)
        mem.write_bytes(addr, b"abcdefghijklmnop")
        new = mem.realloc(addr, 4)
        assert mem.read_bytes(new, 4) == b"abcd"


class TestAccessChecking:
    def test_valid_access(self):
        mem = Memory()
        addr = mem.alloc(8)
        assert mem.check_access(addr, 8).addr == addr

    def test_overrun_raises(self):
        mem = Memory()
        addr = mem.alloc(8)
        with pytest.raises(MemoryError_, match="out-of-bounds"):
            mem.check_access(addr + 4, 8)

    def test_null_raises(self):
        with pytest.raises(MemoryError_, match="NULL"):
            Memory().check_access(0, 1)

    def test_dead_block_raises(self):
        mem = Memory()
        addr = mem.alloc(8, HEAP)
        mem.free(addr)
        with pytest.raises(MemoryError_, match="use-after-free"):
            mem.check_access(addr, 1)

    def test_straddling_allocations_raises(self):
        mem = Memory()
        a = mem.alloc(8)
        mem.alloc(8)
        with pytest.raises(MemoryError_):
            mem.check_access(a + 4, 8)


class TestAccounting:
    def test_live_bytes_tracks_alloc_free(self):
        mem = Memory()
        addr = mem.alloc(100, HEAP)
        assert mem.live_bytes[HEAP] == 100
        mem.free(addr)
        assert mem.live_bytes[HEAP] == 0

    def test_peak_persists_after_free(self):
        mem = Memory()
        a = mem.alloc(64, HEAP)
        mem.free(a)
        mem.alloc(8, HEAP)
        assert mem.peak_bytes[HEAP] == 64

    def test_footprint_excludes_stack(self):
        mem = Memory()
        mem.alloc(1000, STACK)
        mem.alloc(10, HEAP)
        mem.alloc(20, GLOBAL)
        assert mem.peak_footprint() == 30

    def test_scalar_roundtrip(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.write_scalar(addr, "i", -12345)
        assert mem.read_scalar(addr, "i", 4) == -12345
        mem.write_scalar(addr, "d", 2.75)
        assert mem.read_scalar(addr, "d", 8) == 2.75

    def test_cstring(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.write_bytes(addr, b"hi\0rest!")
        assert mem.read_cstring(addr) == "hi"


@st.composite
def alloc_free_script(draw):
    """A sequence of alloc(size)/free(handle) operations."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(1, 30))):
        if live and draw(st.booleans()):
            ops.append(("free", draw(st.integers(0, live - 1))))
        else:
            ops.append(("alloc", draw(st.integers(1, 256))))
            live += 1
    return ops


class TestProperties:
    @given(alloc_free_script())
    @settings(max_examples=60, deadline=None)
    def test_alloc_free_invariants(self, script):
        """Live allocations never overlap; accounting matches; reuse
        never hands out a block that is still live."""
        mem = Memory()
        handles = []
        freed = set()
        for op, arg in script:
            if op == "alloc":
                addr = mem.alloc(arg, HEAP)
                record = mem.find(addr)
                assert record.live and record.addr == addr
                handles.append(addr)
            else:
                if arg in freed or handles[arg] in freed:
                    continue
                target = handles[arg]
                if mem.find(target).live and mem.find(target).addr == target:
                    mem.free(target)
                    freed.add(target)
        live = mem.live_allocations(HEAP)
        # pairwise disjoint
        spans = sorted((a.addr, a.end) for a in live)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        assert mem.live_bytes[HEAP] == sum(a.size for a in live)
        assert mem.peak_bytes[HEAP] >= mem.live_bytes[HEAP]
