"""Memory model unit + property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp.memory import (
    GLOBAL, HEAP, Memory, MemoryError_, STACK,
)


class TestAllocation:
    def test_alloc_returns_aligned_nonnull(self):
        mem = Memory()
        addr = mem.alloc(10)
        assert addr >= 4096 and addr % 8 == 0

    def test_distinct_allocations_disjoint(self):
        mem = Memory()
        a = mem.alloc(16)
        b = mem.alloc(16)
        assert b >= a + 16 or a >= b + 16

    def test_zero_size_allocation_gets_a_byte(self):
        mem = Memory()
        addr = mem.alloc(0)
        assert mem.find(addr).size == 1

    def test_negative_size_raises(self):
        with pytest.raises(MemoryError_):
            Memory().alloc(-1)

    def test_find_interior_address(self):
        mem = Memory()
        addr = mem.alloc(32)
        record = mem.find(addr + 17)
        assert record is not None and record.addr == addr

    def test_find_outside_returns_none(self):
        mem = Memory()
        mem.alloc(8)
        assert mem.find(10) is None  # inside the null guard page

    def test_labels_and_tags(self):
        mem = Memory()
        addr = mem.alloc(8, HEAP, label="zptr", tag=1234)
        record = mem.find(addr)
        assert record.label == "zptr" and record.tag == 1234


class TestFree:
    def test_free_marks_dead(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.free(addr)
        assert not mem.find(addr).live

    def test_free_interior_raises(self):
        mem = Memory()
        addr = mem.alloc(16)
        with pytest.raises(MemoryError_):
            mem.free(addr + 4)

    def test_free_of_global_raises(self):
        mem = Memory()
        addr = mem.alloc(8, GLOBAL)
        with pytest.raises(MemoryError_):
            mem.free(addr)

    def test_free_null_is_noop(self):
        Memory().free(0)

    def test_heap_address_reuse(self):
        """Deliberate fidelity: freed heap addresses are reused
        (same-size first), which is what creates the loop-carried
        dependences of the paper's dijkstra story."""
        mem = Memory()
        a = mem.alloc(24, HEAP)
        mem.free(a)
        b = mem.alloc(24, HEAP)
        assert b == a

    def test_reuse_requires_same_size(self):
        mem = Memory()
        a = mem.alloc(24, HEAP)
        mem.free(a)
        b = mem.alloc(32, HEAP)
        assert b != a

    def test_reused_block_zeroed(self):
        mem = Memory()
        a = mem.alloc(8, HEAP)
        mem.write_bytes(a, b"\xff" * 8)
        mem.free(a)
        b = mem.alloc(8, HEAP)
        assert mem.read_bytes(b, 8) == b"\0" * 8

    def test_stack_release(self):
        mem = Memory()
        addr = mem.alloc(8, STACK)
        record = mem.find(addr)
        mem.release_stack([record])
        assert not record.live


class TestRealloc:
    def test_realloc_grows_and_copies(self):
        mem = Memory()
        addr = mem.alloc(8, HEAP)
        mem.write_bytes(addr, b"12345678")
        new = mem.realloc(addr, 16)
        assert mem.read_bytes(new, 8) == b"12345678"
        assert not mem.find(addr).live or new == addr

    def test_realloc_null_is_malloc(self):
        mem = Memory()
        addr = mem.realloc(0, 8)
        assert mem.find(addr).live

    def test_realloc_shrinks(self):
        mem = Memory()
        addr = mem.alloc(16, HEAP)
        mem.write_bytes(addr, b"abcdefghijklmnop")
        new = mem.realloc(addr, 4)
        assert mem.read_bytes(new, 4) == b"abcd"


class TestAccessChecking:
    def test_valid_access(self):
        mem = Memory()
        addr = mem.alloc(8)
        assert mem.check_access(addr, 8).addr == addr

    def test_overrun_raises(self):
        mem = Memory()
        addr = mem.alloc(8)
        with pytest.raises(MemoryError_, match="out-of-bounds"):
            mem.check_access(addr + 4, 8)

    def test_null_raises(self):
        with pytest.raises(MemoryError_, match="NULL"):
            Memory().check_access(0, 1)

    def test_dead_block_raises(self):
        mem = Memory()
        addr = mem.alloc(8, HEAP)
        mem.free(addr)
        with pytest.raises(MemoryError_, match="use-after-free"):
            mem.check_access(addr, 1)

    def test_straddling_allocations_raises(self):
        mem = Memory()
        a = mem.alloc(8)
        mem.alloc(8)
        with pytest.raises(MemoryError_):
            mem.check_access(a + 4, 8)


class TestAccounting:
    def test_live_bytes_tracks_alloc_free(self):
        mem = Memory()
        addr = mem.alloc(100, HEAP)
        assert mem.live_bytes[HEAP] == 100
        mem.free(addr)
        assert mem.live_bytes[HEAP] == 0

    def test_peak_persists_after_free(self):
        mem = Memory()
        a = mem.alloc(64, HEAP)
        mem.free(a)
        mem.alloc(8, HEAP)
        assert mem.peak_bytes[HEAP] == 64

    def test_footprint_excludes_stack(self):
        mem = Memory()
        mem.alloc(1000, STACK)
        mem.alloc(10, HEAP)
        mem.alloc(20, GLOBAL)
        assert mem.peak_footprint() == 30

    def test_scalar_roundtrip(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.write_scalar(addr, "i", -12345)
        assert mem.read_scalar(addr, "i", 4) == -12345
        mem.write_scalar(addr, "d", 2.75)
        assert mem.read_scalar(addr, "d", 8) == 2.75

    def test_cstring(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.write_bytes(addr, b"hi\0rest!")
        assert mem.read_cstring(addr) == "hi"


class TestZeroCopy:
    """Bulk byte paths: memoryview-sliced, no per-byte Python loop."""

    def test_view_is_zero_copy(self):
        mem = Memory()
        addr = mem.alloc(64)
        mem.write_bytes(addr, bytes(range(64)))
        view = mem.view(addr, 64)
        assert isinstance(view, memoryview)
        assert view.tobytes() == bytes(range(64))
        # writes through the view land in the address space: same
        # backing store, not a copy
        view[0] = 0xFF
        del view  # transient by contract: release before realloc/grow
        assert mem.read_bytes(addr, 1) == b"\xff"

    def test_write_bytes_accepts_memoryview(self):
        mem = Memory()
        a = mem.alloc(32)
        b = mem.alloc(32)
        mem.write_bytes(a, bytes(range(32)))
        mem.write_bytes(b, mem.view(a, 32))   # buffer-to-buffer move
        assert mem.read_bytes(b, 32) == bytes(range(32))

    def test_bounds_checked_bulk_paths(self):
        mem = Memory(check_bounds=True)
        addr = mem.alloc(16)
        with pytest.raises(MemoryError_):
            mem.read_bytes(addr, 32)
        with pytest.raises(MemoryError_):
            mem.write_bytes(addr + 8, b"x" * 16)
        with pytest.raises(MemoryError_):
            mem.view(addr, 17)

    def test_cstring_unterminated_within_limit(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.write_bytes(addr, b"abcdefgh")
        # no NUL within the limit: exactly limit chars, like the
        # historical per-byte walk
        assert mem.read_cstring(addr, limit=4) == "abcd"
        assert mem.read_cstring(addr, limit=0) == ""


class TestBufferMode:
    """Caller-supplied backing buffer (the shared-memory segment)."""

    def _mem(self, size=1 << 16, **kw):
        backing = bytearray(size)
        return backing, Memory(buffer=backing, limit=size, **kw)

    def test_alloc_and_roundtrip(self):
        backing, mem = self._mem()
        assert mem.shared
        addr = mem.alloc(64, HEAP, label="blk")
        mem.write_bytes(addr, b"Z" * 64)
        assert mem.read_bytes(addr, 64) == b"Z" * 64
        # the bytes really live in the caller's buffer
        assert bytes(backing[addr:addr + 64]) == b"Z" * 64

    def test_same_addresses_as_bytearray_mode(self):
        """Identical allocation sequences produce identical addresses
        in both modes — the heap-image bit-identity contract."""
        _, shared = self._mem()
        private = Memory()
        for size in (8, 24, 100, 1, 64):
            assert shared.alloc(size) == private.alloc(size)

    def test_capacity_exhaustion_is_structured(self):
        _, mem = self._mem(size=1 << 13)
        with pytest.raises(MemoryError_, match="region exhausted"):
            mem.alloc(1 << 13)

    def test_reads_beyond_limit_allowed(self):
        """``limit`` gates allocation only: a worker's Memory may read
        and write anywhere in the segment (the expanded copies live in
        the parent region)."""
        backing = bytearray(1 << 16)
        mem = Memory(check_bounds=False, buffer=backing,
                     base=1 << 12, limit=1 << 13)
        backing[1 << 14] = 0x7B
        assert mem.read_bytes(1 << 14, 1) == b"\x7b"
        mem.write_bytes((1 << 14) + 1, b"\x01")
        assert backing[(1 << 14) + 1] == 1

    def test_reset_region_zeroes_dirty_span(self):
        backing, mem = self._mem()
        addr = mem.alloc(128, HEAP)
        mem.write_bytes(addr, b"\xaa" * 128)
        brk = mem.brk
        mem.reset_region()
        assert mem.brk <= brk
        assert not mem._allocs
        assert bytes(backing[addr:addr + 128]) == bytes(128)
        # a fresh allocation sees zero bytes, like a new bytearray
        again = mem.alloc(128, HEAP)
        assert mem.read_bytes(again, 128) == bytes(128)

    def test_detach_copies_out(self):
        backing, mem = self._mem()
        addr = mem.alloc(16, HEAP)
        mem.write_bytes(addr, b"persist-please!!")
        mem.detach()
        assert not mem.shared
        # mutating the old backing no longer affects the memory
        backing[addr] = 0
        assert mem.read_bytes(addr, 16) == b"persist-please!!"


@st.composite
def alloc_free_script(draw):
    """A sequence of alloc(size)/free(handle) operations."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(1, 30))):
        if live and draw(st.booleans()):
            ops.append(("free", draw(st.integers(0, live - 1))))
        else:
            ops.append(("alloc", draw(st.integers(1, 256))))
            live += 1
    return ops


class TestProperties:
    @given(alloc_free_script())
    @settings(max_examples=60, deadline=None)
    def test_alloc_free_invariants(self, script):
        """Live allocations never overlap; accounting matches; reuse
        never hands out a block that is still live."""
        mem = Memory()
        handles = []
        freed = set()
        for op, arg in script:
            if op == "alloc":
                addr = mem.alloc(arg, HEAP)
                record = mem.find(addr)
                assert record.live and record.addr == addr
                handles.append(addr)
            else:
                if arg in freed or handles[arg] in freed:
                    continue
                target = handles[arg]
                if mem.find(target).live and mem.find(target).addr == target:
                    mem.free(target)
                    freed.add(target)
        live = mem.live_allocations(HEAP)
        # pairwise disjoint
        spans = sorted((a.addr, a.end) for a in live)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        assert mem.live_bytes[HEAP] == sum(a.size for a in live)
        assert mem.peak_bytes[HEAP] >= mem.live_bytes[HEAP]
