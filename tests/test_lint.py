"""Static lint engine tests.

Three layers:

1. every benchmark kernel lints clean, and both fault-injector
   analogues (:mod:`repro.lint.mutate`) are caught by at least one
   rule on the mutated IR — the static mirror of the runtime
   fault-injection tests in ``test_faults.py``;
2. targeted sabotage of a small program triggers each rule
   individually;
3. the liveness-based dead span-store analysis finds at least as many
   eliminable stores as the §3.4 emission-time peephole.
"""

import pytest

from repro.bench import all_benchmarks, get
from repro.diagnostics import Diagnostic, DiagnosticSink
from repro.frontend import ast, parse_and_analyze
from repro.lint import all_rules, run_lint
from repro.lint.mutate import corrupt_spans, skew_copy_index
from repro.obs import Tracer
from repro.transform import expand_for_threads
from repro.transform.expand import TID
from repro.transform.optimize import _span_store, find_dead_span_stores
from repro.transform.pipeline import OptFlags

ALL_CODES = {
    "LINT-SPAN-MISSING",
    "LINT-SPAN-DEAD",
    "LINT-SPAN-CLOBBER",
    "LINT-ALLOC-SCALE",
    "LINT-FATPTR-FIELD",
    "LINT-UNINIT-READ",
    "LINT-RACE-TID-FORM",
    "LINT-RACE-PRIVATE-COPY",
    "LINT-RACE-CLASS-SPLIT",
    "LINT-CERT",
}

SMALL = """
int g;
int buf[4];
int out[5];
int main(void) {
    int i; int k;
    int *w = (int*)malloc(sizeof(int) * 3);
    #pragma expand parallel(doall)
    L: for (i = 0; i < 5; i++) {
        g = i;
        for (k = 0; k < 4; k++) buf[k] = g + k;
        for (k = 0; k < 3; k++) w[k] = buf[k];
        out[i] = w[2];
    }
    for (i = 0; i < 5; i++) print_int(out[i]);
    return 0;
}
"""


def _build(source=SMALL, labels=("L",), optimize=True):
    program, sema = parse_and_analyze(source)
    return expand_for_threads(program, sema, list(labels),
                              optimize=optimize)


def test_rule_registry_is_complete():
    rules = all_rules()
    assert {r.code for r in rules} == ALL_CODES
    assert all(r.title for r in rules)


@pytest.mark.parametrize("name", [s.name for s in all_benchmarks()])
def test_benchmark_clean_and_mutations_caught(name):
    spec = get(name)
    program, sema = parse_and_analyze(spec.source)
    result = expand_for_threads(program, sema, spec.loop_labels)

    report = run_lint(result)
    assert report.clean, report.render()
    assert report.rules_run == len(ALL_CODES)

    # SpanCorruptor analogue: wherever a span store exists, zeroing its
    # value must be flagged statically
    corrupted = corrupt_spans(result.program)
    if corrupted:
        clobber = run_lint(result).by_code("LINT-SPAN-CLOBBER")
        assert len(clobber) == corrupted

    # CopyIndexSkew analogue: every skewed __tid occurrence must be
    # rejected by the copy-index auditor
    skewed = skew_copy_index(result.program)
    assert skewed > 0
    tid_form = run_lint(result).by_code("LINT-RACE-TID-FORM")
    assert len(tid_form) == skewed


AMBIGUOUS = """
int out[4];
int main(void) {
    int it; int k; int n;
    int m1 = 48;
    int m2 = 20;
    int *mx;
    #pragma expand parallel(doall)
    L: for (it = 0; it < 4; it++) {
        if (it % 2) {
            mx = (int*)malloc(m1);
            n = 12;
        } else {
            mx = (int*)malloc(m2);
            n = 5;
        }
        for (k = 0; k < n; k++) mx[k] = it + k;
        out[it] = mx[n - 1];
        free(mx);
    }
    for (it = 0; it < 4; it++) print_int(out[it]);
    return 0;
}
"""


def test_vla_expanded_fat_struct_clean_but_skew_caught():
    """Figure 3 shape: ``mx`` is VLA-expanded into per-thread fat
    structs, so redirections read ``__tid * mx[__tid].span`` — two
    ``__tid`` occurrences in one term.  The inner one sits in an opaque
    subtree and must not trip the arithmetic-skeleton audit; a skewed
    index still must."""
    result = _build(AMBIGUOUS)
    report = run_lint(result)
    assert report.clean, report.render()
    assert skew_copy_index(result.program) > 0
    assert run_lint(result).by_code("LINT-RACE-TID-FORM")


class TestReportApi:
    def test_findings_are_diagnostics(self):
        result = _build()
        skew_copy_index(result.program)
        report = run_lint(result)
        assert report.findings
        assert all(isinstance(d, Diagnostic) for d in report.findings)
        assert all(d.phase == "lint" for d in report.findings)
        assert all(d.code in ALL_CODES for d in report.findings)
        assert not report.clean
        assert "finding(s)]" in report.render()

    def test_race_findings_carry_loop_attribution(self):
        result = _build()
        skew_copy_index(result.program)
        findings = run_lint(result).by_code("LINT-RACE-TID-FORM")
        assert any(d.loop == "L" for d in findings)

    def test_sink_accumulates(self):
        result = _build()
        skew_copy_index(result.program)
        sink = DiagnosticSink()
        report = run_lint(result, sink=sink)
        assert sink.diagnostics == report.findings

    def test_rule_selection(self):
        result = _build()
        skew_copy_index(result.program)
        report = run_lint(result, codes=["LINT-SPAN-DEAD"])
        assert report.rules_run == 1
        assert report.clean  # the skew only trips the race rules

    def test_unknown_rule_rejected(self):
        result = _build()
        with pytest.raises(KeyError):
            run_lint(result, codes=["LINT-NO-SUCH-RULE"])

    def test_metrics_recorded(self):
        result = _build()
        tracer = Tracer()
        report = run_lint(result, tracer=tracer)
        assert tracer.metrics.get("lint.rules_run") == report.rules_run
        assert tracer.metrics.get("lint.findings") == 0


class TestSabotage:
    """Each rule fires on a targeted corruption — and only it."""

    def test_missing_span_store(self):
        # constant-span folding off so the span cells stay live
        result = _build(optimize=OptFlags(constant_spans=False))
        assert run_lint(result).clean
        removed = 0
        for fn in result.program.functions():
            for node in fn.body.walk():
                if not isinstance(node, ast.Block):
                    continue
                for stmt in list(node.stmts):
                    if _span_store(stmt) is not None:
                        node.stmts.remove(stmt)
                        removed += 1
        assert removed
        codes = {d.code for d in run_lint(result).findings}
        assert codes == {"LINT-SPAN-MISSING"}

    def test_unscaled_allocation(self):
        result = _build()
        for fn in result.program.functions():
            for node in fn.body.walk():
                if isinstance(node, ast.Call) and \
                        node.callee_name == "malloc" and \
                        isinstance(node.args[0], ast.Binary):
                    node.args[0] = node.args[0].left
        codes = {d.code for d in run_lint(result).findings}
        assert codes == {"LINT-ALLOC-SCALE"}

    def test_private_store_without_copy_selection(self):
        # aim every access at copy 0: no __tid left, so the tid-form
        # rule stays silent and the copy-resolution proof must fail
        result = _build()
        for fn in result.program.functions():
            if fn.body is None:
                continue
            for node in list(fn.body.walk()):
                if isinstance(node, ast.Ident) and node.name == TID:
                    lit = ast.IntLit(0)
                    node.__class__ = ast.IntLit
                    node.__dict__.clear()
                    node.__dict__.update(lit.__dict__)
        codes = {d.code for d in run_lint(result).findings}
        assert codes == {"LINT-RACE-PRIVATE-COPY"}

    def test_split_access_class(self):
        result = _build()
        split = False
        for tl in result.loops:
            private = tl.priv.private_sites
            for edge in tl.profile.ddg.edges:
                if not edge.carried and edge.src in private and \
                        edge.dst in private:
                    private.discard(edge.dst)
                    split = True
                    break
            if split:
                break
        assert split, "no loop-independent private dependence to split"
        report = run_lint(result)
        assert report.by_code("LINT-RACE-CLASS-SPLIT")

    def test_uninitialized_read(self):
        source = SMALL.replace(
            "int i; int k;", "int i; int k; int u; int v;"
        ).replace(
            "return 0;",
            "v = u + 1;\n    print_int(v);\n    return 0;",
        )
        result = _build(source)
        findings = run_lint(result).findings
        assert {d.code for d in findings} == {"LINT-UNINIT-READ"}
        assert all(d.severity == "warning" for d in findings)


DEAD_SPAN_SRC = """
int out[5];
int main(void) {
    int i; int k; int b;
    int m = 8;
    int *p = (int*)malloc(sizeof(int) * m);
    int *q;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 5; i++) {
        for (k = 0; k < m; k++) p[k] = i + k;
        b = 0;
        for (k = 0; k < m; k++) b = b + p[k];
        out[i] = b;
    }
    p = p + 0;
    q = p + 1;
    for (i = 0; i < 5; i++) print_int(out[i]);
    return 0;
}
"""


class TestDeadSpanAnalysis:
    """The liveness-based dead span-store analysis must subsume the
    §3.4 emission-time peephole: everything the peephole removes is an
    identity store the liveness pass also proves removable, and the
    liveness pass additionally finds stores that are merely never read
    (``q.span`` here — not an identity, invisible to the peephole)."""

    def _build(self, flags):
        program, sema = parse_and_analyze(DEAD_SPAN_SRC)
        return expand_for_threads(program, sema, ["L"], optimize=flags)

    def test_liveness_subsumes_peephole(self):
        kept = self._build(OptFlags(selective_promotion=False,
                                    trivial_span_elim=False))
        dead = find_dead_span_stores(kept.program)
        reasons = sorted(d.reason for d in dead)

        peephole = self._build(OptFlags(selective_promotion=False))
        adhoc = peephole.promoter.span_stores_eliminated

        assert adhoc >= 1
        assert len(dead) >= adhoc
        assert "identity" in reasons  # the p = p + 0 self-store
        assert "dead" in reasons      # q.span, never read again

    def test_pipeline_runs_liveness_pass(self):
        result = self._build(OptFlags(selective_promotion=False))
        assert result.span_stores_dead_eliminated >= 1
        # and the output still lints clean afterwards
        assert run_lint(result).clean

    def test_dead_rule_flags_surviving_stores(self):
        kept = self._build(OptFlags(selective_promotion=False,
                                    trivial_span_elim=False))
        report = run_lint(kept)
        dead = report.by_code("LINT-SPAN-DEAD")
        assert dead
        assert all(d.severity == "warning" for d in dead)
        assert report.stats["span_stores_proved_dead"] == len(dead)


class TestCliLint:
    def test_file_mode_clean(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "small.c"
        path.write_text(SMALL)
        assert main(["lint", str(path), "--fail-on-warning"]) == 0
        captured = capsys.readouterr()
        assert "0 finding(s)" in captured.err

    def test_bench_mode_clean(self, capsys):
        from repro.cli import main
        assert main(["lint", "--bench", "dijkstra"]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_warning_exit_codes(self, tmp_path, capsys):
        from repro.cli import main
        source = SMALL.replace(
            "int i; int k;", "int i; int k; int u; int v;"
        ).replace(
            "return 0;",
            "v = u + 1;\n    print_int(v);\n    return 0;",
        )
        path = tmp_path / "warn.c"
        path.write_text(source)
        # warnings alone do not fail...
        assert main(["lint", str(path)]) == 0
        # ...unless --fail-on-warning is given
        assert main(["lint", str(path), "--fail-on-warning"]) == 1
        captured = capsys.readouterr()
        assert "LINT-UNINIT-READ" in captured.out
