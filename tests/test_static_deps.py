"""Static dependence analysis unit tests."""

from repro.analysis import build_static_ddg
from repro.analysis.access_classes import build_access_classes
from repro.analysis.privatization import classify
from repro.frontend import ast, parse_and_analyze


def static_ddg(source, label="L"):
    program, sema = parse_and_analyze(source)
    loop = ast.find_loop(program, label)
    return build_static_ddg(program, sema, loop)


def test_disjoint_affine_subscripts_independent():
    ddg = static_ddg("""
    int a[16];
    int main(void) {
        int i;
        L: for (i = 0; i < 8; i++) {
            a[i * 2] = 1;
            a[i * 2 + 1] = 2;
        }
        print_int(a[3]);
        return 0;
    }
    """)
    # same-stride different-offset: the two stores never alias
    assert not any(e.carried for e in ddg.edges)


def test_identical_subscripts_loop_independent_only():
    ddg = static_ddg("""
    int a[8];
    int main(void) {
        int i;
        L: for (i = 0; i < 8; i++) {
            a[i] = i;
            print_int(a[i]);
        }
        return 0;
    }
    """)
    assert any(not e.carried for e in ddg.edges)
    assert not any(e.carried for e in ddg.edges)


def test_pointer_accesses_assumed_carried():
    """No distance reasoning through pointers: the conservatism the
    paper complains about."""
    ddg = static_ddg("""
    int main(void) {
        int *p = (int*)malloc(32);
        int i;
        L: for (i = 0; i < 8; i++) {
            p[i] = i;            // actually disjoint per iteration...
        }
        print_int(p[3]);
        free(p);
        return 0;
    }
    """)
    assert any(e.carried for e in ddg.edges)  # ...but assumed carried


def test_static_graph_blocks_definition5():
    """Everything is exposed + carried under the static graph, so
    Definition 5 finds nothing to privatize."""
    ddg = static_ddg("""
    int buf[8];
    int out[4];
    int main(void) {
        int i; int k;
        L: for (i = 0; i < 4; i++) {
            for (k = 0; k < 8; k++) buf[k] = i;
            out[i] = buf[0];
        }
        print_int(out[3]);
        return 0;
    }
    """)
    priv = classify(ddg, build_access_classes(ddg))
    assert not priv.private_sites


def test_induction_variable_excluded():
    ddg = static_ddg("""
    int out[8];
    int main(void) {
        int i;
        L: for (i = 0; i < 8; i++) {
            out[i] = i;
        }
        print_int(out[0]);
        return 0;
    }
    """)
    # only the out[] store (+ reads of i folded into it) is a site;
    # the induction variable itself contributes no sites
    assert ddg.sites
