"""Integration tests: the public one-call API and the example scripts."""

import runpy

import pytest

from repro import expand_and_run


class TestExpandAndRun:
    SRC = """
    int scratch[64];
    int out[12];
    int main(void) {
        int i; int k; int b;
        #pragma expand parallel(doall)
        L: for (i = 0; i < 12; i++) {
            b = 0;
            for (k = 0; k < 64; k++) {
                scratch[k] = i * k;
                b += (scratch[k] * 3) % 11;
            }
            out[i] = b;
        }
        for (i = 0; i < 12; i++) print_int(out[i]);
        return 0;
    }
    """

    def test_one_call_api(self):
        outcome = expand_and_run(self.SRC, loop_labels=["L"], nthreads=3)
        assert len(outcome.output) == 12
        assert not outcome.races
        assert outcome.loop_speedup > 1.0
        assert outcome.total_speedup > 1.0

    def test_unoptimized_mode(self):
        outcome = expand_and_run(self.SRC, loop_labels=["L"], nthreads=2,
                                 optimize=False)
        assert not outcome.races

    def test_transform_details_exposed(self):
        outcome = expand_and_run(self.SRC, loop_labels=["L"], nthreads=2)
        assert outcome.transform.num_privatized >= 1
        assert outcome.transform.loops[0].breakdown is not None


@pytest.mark.parametrize("script", [
    "quickstart", "video_blur", "block_compressor", "inspect_analysis",
    "ambiguous_spans",
])
def test_examples_run(script, capsys):
    """Every shipped example executes end to end."""
    import pathlib
    path = (pathlib.Path(__file__).resolve().parent.parent
            / "examples" / f"{script}.py")
    runpy.run_path(str(path), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip()
    assert "races detected : 0" in captured.out or \
        "Traceback" not in captured.out
