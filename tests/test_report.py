"""Report-rendering unit tests (cheap: synthetic BenchmarkResults)."""

from repro.bench.harness import BenchmarkResult, ParallelPoint
from repro.bench.report import (
    fig8_breakdown, fig9_overhead, fig11_speedup, fig12_breakdown,
    fig13_rtpriv_speedup, fig14_memory, full_report, harmonic_mean,
    table4, table5,
)
from repro.bench.suite import BenchmarkSpec, PaperNumbers
from repro.analysis.breakdown import Breakdown


def fake_result(name="fake"):
    spec = BenchmarkSpec(
        name=name, suite="Synthetic", source="int main(void){return 0;}\n",
        loop_labels=["L"], function="main", level=1, parallelism="DOALL",
        paper=PaperNumbers(loc=100, pct_time=90.0, privatized=2),
    )
    r = BenchmarkResult(spec)
    r.pct_time = 0.85
    r.num_privatized = 2
    r.breakdown = Breakdown(free=30, expandable=60, carried=10)
    r.overhead_opt = 1.05
    r.overhead_unopt = 1.9
    r.overhead_rtpriv = 3.0
    for n in (1, 2, 4, 8):
        p = ParallelPoint(n)
        p.loop_speedup = n * 0.8
        p.total_speedup = n * 0.7
        p.memory_multiple = 1 + n / 8
        p.breakdown = {"work": 100.0 * n, "sync": 5.0, "wait": 10.0,
                       "runtime": 3.0}
        r.expansion[n] = p
        q = ParallelPoint(n)
        q.loop_speedup = 0.9
        q.total_speedup = 0.9
        q.memory_multiple = 2.0
        r.rtpriv[n] = q
    r.sync_only_speedup = 0.95
    return r


RESULTS = {"fake": fake_result()}


def test_harmonic_mean():
    assert abs(harmonic_mean([1.0, 2.0]) - 4 / 3) < 1e-9
    assert harmonic_mean([]) == 0.0
    assert harmonic_mean([0.0, 2.0]) == 2.0  # zeros dropped


def test_table4_row():
    text = table4(RESULTS)
    assert "fake" in text and "Synthetic" in text and "85.0%" in text


def test_table5_row():
    text = table5(RESULTS)
    assert "2" in text


def test_fig8():
    text = fig8_breakdown(RESULTS)
    assert "60.0%" in text


def test_fig9_includes_means():
    text = fig9_overhead(RESULTS)
    assert "1.90x" in text and "1.05x" in text and "harmonic" in text


def test_fig11_series():
    text = fig11_speedup(RESULTS)
    assert "loop@8" in text and "6.40" in text


def test_fig12_fractions_sum():
    text = fig12_breakdown(RESULTS)
    assert "work" in text and "%" in text


def test_fig13_and_14():
    assert "0.90" in fig13_rtpriv_speedup(RESULTS)
    assert "x" in fig14_memory(RESULTS)


def test_full_report_contains_all_sections():
    text = full_report(RESULTS)
    for marker in ("Table 4", "Table 5", "Figure 8", "Figure 9",
                   "Figure 10", "Figure 11", "Figure 12", "Figure 13",
                   "Figure 14"):
        assert marker in text
