"""Benchmark kernel sanity: every kernel parses, runs deterministically,
and its spec metadata is consistent with its source."""

import pytest

from repro.bench import all_benchmarks, get
from repro.frontend import ast, parse_and_analyze
from repro.interp import Machine
from repro.transform.pipeline import parse_loop_kind

ALL = [spec.name for spec in all_benchmarks()]


@pytest.fixture(scope="module")
def parsed():
    out = {}
    for spec in all_benchmarks():
        out[spec.name] = parse_and_analyze(spec.source)
    return out


def test_suite_has_eight_paper_kernels():
    paper = [s for s in all_benchmarks() if s.suite != "repro-extra"]
    assert len(paper) == 8
    assert "histogram" in ALL


@pytest.mark.parametrize("name", ALL)
def test_kernel_parses_and_runs(name, parsed):
    program, sema = parsed[name]
    machine = Machine(program, sema)
    code = machine.run()
    assert code == 0
    assert machine.output, f"{name} produced no output"


@pytest.mark.parametrize("name", ALL)
def test_kernel_deterministic(name, parsed):
    spec = get(name)
    program, sema = parse_and_analyze(spec.source)
    a = Machine(program, sema)
    a.run()
    b = Machine(program, sema)
    b.run()
    assert a.output == b.output


@pytest.mark.parametrize("name", ALL)
def test_loop_labels_exist_with_pragmas(name, parsed):
    spec = get(name)
    program, _ = parsed[name]
    for label in spec.loop_labels:
        loop = ast.find_loop(program, label)
        assert loop.pragmas, f"{name}:{label} missing pragma"
        assert parse_loop_kind(loop).upper() == spec.parallelism


@pytest.mark.parametrize("name", ALL)
def test_spec_metadata(name):
    spec = get(name)
    assert spec.loc > 30
    if spec.suite != "repro-extra":
        # Table 4/5 numbers only exist for the paper's own kernels
        assert spec.paper.loc > spec.loc  # kernels are scaled-down ports
        assert 0 < spec.paper.pct_time <= 100
    assert spec.paper.privatized >= 1


@pytest.mark.parametrize("name", ALL)
def test_kernel_size_budget(name, parsed):
    """Kernels stay within interpreter scale (whole suite must run in
    minutes, not hours)."""
    spec = get(name)
    program, sema = parse_and_analyze(spec.source)
    machine = Machine(program, sema)
    machine.run()
    assert machine.cost.instructions < 2_000_000, machine.cost.instructions


def test_table4_order():
    names = [spec.name for spec in all_benchmarks()]
    assert names == [
        "dijkstra", "md5", "mpeg2-encoder", "mpeg2-decoder",
        "h263-encoder", "256.bzip2", "456.hmmer", "470.lbm",
        "histogram",  # extras follow the paper's Table 4 order
    ]


def test_doacross_kernels():
    doacross = {s.name for s in all_benchmarks()
                if s.parallelism == "DOACROSS"}
    assert doacross == {"dijkstra", "256.bzip2", "456.hmmer"}


def test_bzip2_recasts_zptr():
    assert "(short*)zptr" in get("256.bzip2").source


def test_hmmer_has_two_malloc_sites_for_mx():
    src = get("456.hmmer").source
    assert "mx = (int*)malloc(m1);" in src
    assert "mx = (int*)malloc(m2);" in src


def test_dijkstra_uses_malloc_free_queue():
    src = get("dijkstra").source
    assert "malloc(sizeof(struct qitem))" in src and "free(q)" in src


@pytest.mark.slow
@pytest.mark.parametrize("name", ALL)
def test_kernel_parallel_smoke(name, parsed):
    """Every kernel transforms and runs race-free on 2 threads with
    output identical to sequential (the full harness covers more
    thread counts; this is the fast always-on integration check)."""
    from repro.interp import Machine
    from repro.runtime import run_parallel
    from repro.transform import expand_for_threads

    spec = get(name)
    program, sema = parse_and_analyze(spec.source)
    base = Machine(program, sema)
    base.run()
    result = expand_for_threads(program, sema, spec.loop_labels)
    outcome = run_parallel(result, 2)
    assert outcome.output == base.output
    assert not outcome.races
