"""CFG construction and dataflow-engine unit tests."""


from repro.analysis.cfg import build_cfg, build_loop_body_cfg
from repro.analysis.dataflow import (
    DownwardExposure,
    Liveness,
    ReachingDefinitions,
    UpwardExposure,
    solve,
)
from repro.frontend import ast, parse_and_analyze


def _main(source):
    program, _sema = parse_and_analyze(source)
    return program.function("main")


def _decl(fn, name):
    for param in fn.params:
        if param.name == name:
            return param
    for node in fn.body.walk():
        if isinstance(node, ast.VarDecl) and node.name == name:
            return node
    raise KeyError(name)


def _assign_to(fn, name, index=0):
    hits = [
        node for node in fn.body.walk()
        if isinstance(node, ast.Assign)
        and isinstance(node.target, ast.Ident)
        and node.target.name == name
    ]
    return hits[index]


def _return_expr(fn):
    for node in fn.body.walk():
        if isinstance(node, ast.Return) and node.expr is not None:
            return node.expr
    raise AssertionError("no return with value")


def _loop(fn):
    for node in fn.body.walk():
        if isinstance(node, ast.LoopStmt):
            return node
    raise AssertionError("no loop")


class TestCfgConstruction:
    def test_linear_body_single_path(self):
        fn = _main("""
        int main(void) {
            int x;
            x = 1;
            x = x + 2;
            return x;
        }
        """)
        cfg = build_cfg(fn)
        # every element landed in a block that reaches the exit
        assert len(list(cfg.elements())) == 4  # decl + 2 assigns + return
        for _block, elem in cfg.elements():
            assert cfg.block_of[elem.nid] is _block

    def test_if_else_diamond(self):
        fn = _main("""
        int main(void) {
            int c; int x;
            c = 0;
            if (c) { x = 1; } else { x = 2; }
            return x;
        }
        """)
        cfg = build_cfg(fn)
        cond_block = None
        for block in cfg.blocks:
            for elem in block.elems:
                if isinstance(elem, ast.Ident) and elem.name == "c":
                    cond_block = block
        assert cond_block is not None
        assert len(cond_block.succs) == 2

    def test_loop_has_back_edge(self):
        fn = _main("""
        int main(void) {
            int i; int s;
            s = 0;
            for (i = 0; i < 4; i++) s = s + i;
            return s;
        }
        """)
        cfg = build_cfg(fn)
        loop = _loop(fn)
        header = cfg.block_of[loop.cond.nid]
        # some block downstream of the header loops back to it
        assert any(header in block.succs for block in cfg.blocks
                   if block is not header)

    def test_loop_body_cfg_is_acyclic(self):
        fn = _main("""
        int main(void) {
            int i; int s;
            s = 0;
            for (i = 0; i < 4; i++) {
                if (i == 2) continue;
                s = s + i;
            }
            return s;
        }
        """)
        cfg = build_loop_body_cfg(_loop(fn))
        # DFS cycle check: a single-iteration region has no back edge
        seen, stack = set(), set()

        def dfs(block):
            seen.add(block.bid)
            stack.add(block.bid)
            for succ in block.succs:
                assert succ.bid not in stack, "region CFG has a cycle"
                if succ.bid not in seen:
                    dfs(succ)
            stack.discard(block.bid)

        dfs(cfg.entry)

    def test_params_are_entry_elements(self):
        program, _sema = parse_and_analyze("""
        int twice(int a) { return a + a; }
        int main(void) { return twice(3); }
        """)
        fn = program.function("twice")
        cfg = build_cfg(fn)
        assert fn.params[0].nid in cfg.block_of
        assert cfg.block_of[fn.params[0].nid] is cfg.entry


class TestReachingDefinitions:
    def test_both_branches_reach_join(self):
        fn = _main("""
        int main(void) {
            int c; int x;
            c = 0;
            if (c) { x = 1; } else { x = 2; }
            return x;
        }
        """)
        rd = solve(build_cfg(fn), ReachingDefinitions())
        x = _decl(fn, "x")
        facts = {f for f in rd.before(_return_expr(fn).nid) if f[0] == x.nid}
        sites = {site for _decl_nid, site in facts}
        assert sites == {
            _assign_to(fn, "x", 0).nid,
            _assign_to(fn, "x", 1).nid,
        }

    def test_maybe_write_does_not_kill_uninit(self):
        fn = _main("""
        int main(void) {
            int c; int x;
            c = 0;
            if (c) { x = 1; }
            return x;
        }
        """)
        rd = solve(build_cfg(fn), ReachingDefinitions())
        x = _decl(fn, "x")
        sites = {site for decl, site in rd.before(_return_expr(fn).nid)
                 if decl == x.nid}
        # the synthetic uninitialized definition survives the maybe-write
        assert None in sites
        assert _assign_to(fn, "x").nid in sites

    def test_certain_write_kills_uninit(self):
        fn = _main("""
        int main(void) {
            int x;
            x = 5;
            return x;
        }
        """)
        rd = solve(build_cfg(fn), ReachingDefinitions())
        x = _decl(fn, "x")
        sites = {site for decl, site in rd.before(_return_expr(fn).nid)
                 if decl == x.nid}
        assert sites == {_assign_to(fn, "x").nid}

    def test_break_path_merges_at_loop_exit(self):
        fn = _main("""
        int main(void) {
            int i; int x;
            x = 0;
            for (i = 0; i < 10; i++) {
                if (i == 5) break;
                x = 1;
            }
            return x;
        }
        """)
        rd = solve(build_cfg(fn), ReachingDefinitions())
        x = _decl(fn, "x")
        sites = {site for decl, site in rd.before(_return_expr(fn).nid)
                 if decl == x.nid}
        assert sites == {
            _assign_to(fn, "x", 0).nid,
            _assign_to(fn, "x", 1).nid,
        }

    def test_param_binding_is_boundary_definition(self):
        program, _sema = parse_and_analyze("""
        int twice(int a) { return a + a; }
        int main(void) { return twice(3); }
        """)
        fn = program.function("twice")
        rd = solve(build_cfg(fn), ReachingDefinitions())
        a = fn.params[0]
        ret = _return_expr(fn)
        assert (a.nid, None) in rd.before(ret.nid)


class TestLiveness:
    def test_overwritten_value_not_live(self):
        fn = _main("""
        int main(void) {
            int x;
            x = 1;
            x = 2;
            return x;
        }
        """)
        live = solve(build_cfg(fn), Liveness())
        x = _decl(fn, "x")
        second = _assign_to(fn, "x", 1)
        assert x.nid not in live.before(second.nid)
        assert x.nid in live.after(second.nid)

    def test_loop_carried_variable_live_at_header(self):
        fn = _main("""
        int main(void) {
            int i; int s;
            s = 0;
            for (i = 0; i < 4; i++) s = s + i;
            return s;
        }
        """)
        live = solve(build_cfg(fn), Liveness())
        s = _decl(fn, "s")
        loop = _loop(fn)
        assert s.nid in live.before(loop.cond.nid)

    def test_exit_live_boundary(self):
        source = """
        int g;
        int main(void) {
            g = 5;
            return 0;
        }
        """
        program, _sema = parse_and_analyze(source)
        fn = program.function("main")
        g = next(d for d in program.globals() if d.name == "g")
        store = _assign_to(fn, "g")
        dead = solve(build_cfg(fn), Liveness())
        assert g.nid not in dead.after(store.nid)
        kept = solve(build_cfg(fn), Liveness(exit_live={g.nid}))
        assert g.nid in kept.after(store.nid)

    def test_calls_read_call_reads(self):
        source = """
        int g;
        int bump(void) { g = g + 1; return g; }
        int main(void) {
            g = 1;
            bump();
            return 0;
        }
        """
        program, _sema = parse_and_analyze(source)
        fn = program.function("main")
        g = next(d for d in program.globals() if d.name == "g")
        store = _assign_to(fn, "g")
        blind = solve(build_cfg(fn), Liveness())
        assert g.nid not in blind.after(store.nid)
        aware = solve(build_cfg(fn), Liveness(call_reads={g.nid}))
        assert g.nid in aware.after(store.nid)


EXPOSURE_SRC = """
int main(void) {
    int i; int s; int b;
    s = 0;
    for (i = 0; i < 4; i++) {
        b = 0;
        b = b + i;
        s = s + b;
    }
    return s;
}
"""


class TestExposure:
    def test_upward_exposure_matches_definition_2(self):
        fn = _main(EXPOSURE_SRC)
        region = build_loop_body_cfg(_loop(fn))
        up = solve(region, UpwardExposure())
        s = _decl(fn, "s")
        b = _decl(fn, "b")
        exposed = up.at_entry
        # s is read before any write in the iteration; b is written first
        assert s.nid in exposed
        assert b.nid not in exposed

    def test_downward_exposure_matches_definition_3(self):
        fn = _main(EXPOSURE_SRC)
        region = build_loop_body_cfg(_loop(fn))
        down = solve(region, DownwardExposure())
        s = _decl(fn, "s")
        surviving = {decl for decl, _site in down.at_exit}
        assert s.nid in surviving

    def test_conditional_write_not_downward_certain(self):
        fn = _main("""
        int main(void) {
            int i; int x;
            x = 0;
            for (i = 0; i < 4; i++) {
                if (i == 2) { x = i; }
            }
            return x;
        }
        """)
        region = build_loop_body_cfg(_loop(fn))
        down = solve(region, DownwardExposure(
            boundary_defs={(_decl(fn, "x").nid, None)}
        ))
        # the untaken path keeps the boundary definition alive
        assert (_decl(fn, "x").nid, None) in down.at_exit
