"""Bytecode execution tier: engine selection, differential equivalence
against the tree walker over the whole benchmark suite, observer/cost
parity, the parallel-runtime drop-in contract, the memory fast-path
caches, and the schema-3 wall-clock trajectory."""

import json
import os

import pytest

from repro import expand_and_run
from repro.frontend import parse_and_analyze
from repro.interp import ENGINES, Machine, RecordingObserver, resolve_engine
from repro.interp.bytecode import BytecodeMachine, invalidate_code
from repro.interp.memory import HEAP, Memory, MemoryError_


# ---------------------------------------------------------------------------
# engine selection
# ---------------------------------------------------------------------------

class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("ast", "bytecode", "bytecode-bare", "native")

    def test_default_is_ast(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine() == "ast"
        assert resolve_engine(None) == "ast"

    @pytest.mark.parametrize("alias,canonical", [
        ("bare", "bytecode-bare"), ("walker", "ast"), ("tree", "ast"),
        ("bytecode", "bytecode"),
    ])
    def test_aliases(self, alias, canonical):
        assert resolve_engine(alias) == canonical

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "bytecode")
        assert resolve_engine() == "bytecode"
        # explicit argument wins over the environment
        assert resolve_engine("ast") == "ast"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown interpreter engine"):
            resolve_engine("jit")

    def test_machine_factory(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        program, sema = parse_and_analyze(
            "int main(void) { return 0; }")
        walker = Machine(program, sema)
        assert type(walker) is Machine and walker.engine == "ast"
        bc = Machine(program, sema, engine="bytecode")
        assert isinstance(bc, BytecodeMachine)
        assert bc.engine == "bytecode"
        bare = Machine(program, sema, engine="bare")
        assert isinstance(bare, BytecodeMachine)
        assert bare.engine == "bytecode-bare"

    def test_env_var_selects_machine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "bytecode")
        program, sema = parse_and_analyze(
            "int main(void) { return 0; }")
        machine = Machine(program, sema)
        assert isinstance(machine, BytecodeMachine)


# ---------------------------------------------------------------------------
# differential equivalence over the full benchmark suite
# ---------------------------------------------------------------------------

def _fingerprint(machine, code):
    cost = machine.cost
    return (code, tuple(machine.output), cost.cycles, cost.instructions,
            cost.loads, cost.stores, machine.memory.peak_footprint())


def _bench_names():
    from repro.bench import all_benchmarks

    return [spec.name for spec in all_benchmarks()]


class TestDifferential:
    """Every kernel computes bit-identical output *and* bit-identical
    simulated cost under all tiers, with zero compile fallbacks."""

    @pytest.mark.parametrize("name", _bench_names())
    def test_kernel_parity(self, name):
        from repro.bench import get
        from repro.interp.native import native_backend_available

        spec = get(name)
        native_ok, _ = native_backend_available()
        prints = {}
        for engine in ENGINES:
            if engine == "native" and not native_ok:
                continue
            program, sema = parse_and_analyze(spec.source)
            machine = Machine(program, sema, engine=engine)
            prints[engine] = _fingerprint(machine, machine.run())
            if engine != "ast":
                assert machine.compiler.fallbacks == 0, engine
            if engine == "native":
                assert machine.native_diag is None
                assert machine._low.nl == {}
                assert machine.native_dispatches > 0
        assert prints["ast"] == prints["bytecode"]
        assert prints["ast"] == prints["bytecode-bare"]
        if native_ok:
            # everything but the memory footprint: native frames are
            # bump-allocated in C and covered by one spanning Python
            # record, so the accounting stats legitimately differ
            assert prints["ast"][:6] == prints["native"][:6]


# A small program exercising the specialized compile shapes: scalar
# locals, globals, arrays, pointer arithmetic/deref, struct members,
# ++/--, compound assignment, strings, short-circuits, recursion.
SHAPES_SRC = """
struct pt { int x; int y; };
int g;
double acc;

int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main(void) {
    int i;
    int a[8];
    struct pt p;
    p.x = 3; p.y = -4;
    int* q = a;
    for (i = 0; i < 8; i++) { a[i] = i * i; }
    for (i = 0; i < 8; i++) {
        g += *(q + i);
        p.x += a[i] % 3;
        acc = acc + a[i] * 0.5;
        i % 2 == 0 ? g++ : g--;
    }
    unsigned char c = 250;
    c += 10;                      /* wraps to 4 */
    print_int(c);
    print_int(fib(10));
    print_int(g + p.x + p.y);
    print_double(acc);
    print_str("shapes done");
    return g > 0 && p.x > 0;
}
"""


class TestObserverParity:
    def test_recorded_accesses_identical(self):
        # one parse: nids are process-global, so site ids only compare
        # across engines when both machines share the analyzed AST
        program, sema = parse_and_analyze(SHAPES_SRC)
        events = {}
        for engine in ("ast", "bytecode"):
            machine = Machine(program, sema, engine=engine)
            obs = RecordingObserver()
            machine.observers.append(obs)
            code = machine.run()
            events[engine] = (code, tuple(machine.output),
                              tuple(obs.events))
        assert events["ast"] == events["bytecode"]

    def test_bare_skips_observers_but_matches_costs(self):
        prints = {}
        for engine in ("ast", "bytecode-bare"):
            program, sema = parse_and_analyze(SHAPES_SRC)
            machine = Machine(program, sema, engine=engine)
            obs = RecordingObserver()
            machine.observers.append(obs)
            prints[engine] = _fingerprint(machine, machine.run())
            if engine == "bytecode-bare":
                assert obs.events == []   # no fan-out by design
            else:
                assert obs.events
        assert prints["ast"] == prints["bytecode-bare"]


# ---------------------------------------------------------------------------
# parallel runtime drop-in contract
# ---------------------------------------------------------------------------

PAR_SRC = """
int n;
int out[12];
int main(void) {
    int i; int k;
    n = 16;
    int* buf = malloc(n * sizeof(int));
    #pragma expand parallel(doall)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < n; k++) buf[k] = i * k + 1;
        out[i] = buf[n - 1];
    }
    for (i = 0; i < 12; i++) print_int(out[i]);
    return 0;
}
"""

RACY_SRC = """
int buf[16];
int out[12];
int main(void) {
    int i; int k;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        out[i] = buf[15];
    }
    for (i = 0; i < 12; i++) print_int(out[i]);
    return 0;
}
"""


class TestParallelContract:
    @pytest.mark.parametrize("engine", ["bytecode", "bytecode-bare"])
    def test_expand_and_run_verified(self, engine):
        outcome = expand_and_run(PAR_SRC, ["L"], nthreads=4, engine=engine)
        assert outcome.verified
        assert outcome.races == []
        assert outcome.loop_speedup > 1.0

    def test_same_speedups_as_walker(self):
        a = expand_and_run(PAR_SRC, ["L"], nthreads=4, engine="ast")
        b = expand_and_run(PAR_SRC, ["L"], nthreads=4, engine="bytecode")
        assert a.output == b.output
        assert a.loop_speedup == b.loop_speedup
        assert a.total_speedup == b.total_speedup
        assert a.parallel.peak_memory == b.parallel.peak_memory

    def test_race_checker_fires(self):
        from repro.frontend import ast as A
        from repro.frontend.sema import analyze
        from repro.runtime import RaceError, run_parallel
        from repro.transform import expand_for_threads

        # plant a genuine conflict: every iteration writes one shared
        # global (mirrors test_runtime.TestRaceDetection on the walker)
        program, sema = parse_and_analyze(RACY_SRC)
        result = expand_for_threads(program, sema, ["L"])
        loop = result.loops[0].loop
        store = A.ExprStmt(A.Assign(
            "=", A.Index(A.Ident("out"), A.IntLit(0)), A.IntLit(1)
        ))
        loop.body.stmts.append(store)
        result.sema = analyze(result.program)
        with pytest.raises(RaceError):
            run_parallel(result, 4, engine="bytecode", strict=True)

    def test_watchdog_trips(self):
        from repro.interp import WatchdogTimeout

        src = ("int main(void) { int i; L: for (i = 0; i < 100000; i++) "
               "{ } return 0; }")
        program, sema = parse_and_analyze(src)
        machine = Machine(program, sema, max_loop_steps=500,
                          engine="bytecode")
        with pytest.raises(WatchdogTimeout) as info:
            machine.run()
        diag = info.value.diagnostic
        assert diag.code == "INTERP-WATCHDOG"
        assert diag.loop == "L"

    def test_interp_engine_metric_recorded(self):
        outcome = expand_and_run(PAR_SRC, ["L"], nthreads=2,
                                 engine="bytecode", trace=True)
        assert outcome.trace.metrics.as_dict()["interp.engine"] == "bytecode"

    def test_compile_phase_traced(self):
        outcome = expand_and_run(PAR_SRC, ["L"], nthreads=2,
                                 engine="bytecode", trace=True)
        phases = {s.name for s in outcome.trace.spans}
        assert "compile-bytecode" in phases


# ---------------------------------------------------------------------------
# lint mutators invalidate compiled code
# ---------------------------------------------------------------------------

class TestMutationInvalidation:
    def _outcome(self, result, engine):
        machine = Machine(result.program, result.sema, engine=engine)
        try:
            code = machine.run()
        except Exception as exc:
            return (type(exc).__name__, str(exc))
        return (code, tuple(machine.output))

    def test_mutated_ast_not_served_from_stale_cache(self):
        from repro.lint.mutate import skew_copy_index
        from repro.transform import expand_for_threads

        program, sema = parse_and_analyze(PAR_SRC)
        result = expand_for_threads(program, sema, ["L"])
        # compile + run the clean program so the code cache is warm
        clean = self._outcome(result, "bytecode")
        assert clean == self._outcome(result, "ast")
        # in-place AST corruption; compiled closures must not survive.
        # Sequentially only copy 0 exists, so the skewed __tid aims
        # every redirected access out of bounds — visibly different
        # from the clean run.
        count = skew_copy_index(result.program, stride=1)
        assert count > 0
        mutated = self._outcome(result, "bytecode")
        assert mutated != clean
        # and both tiers agree on the corrupted semantics — a stale
        # cache would silently keep the pre-mutation behavior alive
        assert mutated == self._outcome(result, "ast")


# ---------------------------------------------------------------------------
# memory fast paths
# ---------------------------------------------------------------------------

class TestLookupCache:
    def test_use_after_free_detected_through_cache(self):
        memory = Memory()
        addr = memory.alloc(16, HEAP, label="victim")
        memory.check_access(addr, 4)      # warms the last-hit cache
        memory.free(addr)
        with pytest.raises(MemoryError_, match="use-after-free"):
            memory.check_access(addr, 4)

    def test_use_after_realloc_detected_through_cache(self):
        memory = Memory()
        addr = memory.alloc(16, HEAP, label="victim")
        memory.check_access(addr, 16)
        new_addr = memory.realloc(addr, 64)
        assert new_addr != addr
        memory.check_access(new_addr, 64)
        with pytest.raises(MemoryError_, match="use-after-free"):
            memory.check_access(addr, 16)

    def test_two_entry_cache_promotion(self):
        memory = Memory()
        a = memory.alloc(8, HEAP)
        b = memory.alloc(8, HEAP)
        # alternate hits so both entries populate and promote
        for _ in range(4):
            assert memory.check_access(a, 8).addr == a
            assert memory.check_access(b, 8).addr == b
        memory.free(a)
        with pytest.raises(MemoryError_):
            memory.check_access(a, 8)
        assert memory.check_access(b, 8).addr == b

    def test_invalidate_lookup_cache(self):
        memory = Memory()
        a = memory.alloc(8, HEAP)
        memory.check_access(a, 8)
        memory.invalidate_lookup_cache()
        assert memory._hit is None and memory._hit2 is None
        # still findable through the slow path
        assert memory.check_access(a, 8).addr == a

    def test_use_after_free_in_program_bytecode(self):
        src = """
        int main(void) {
            int* p = malloc(8);
            p[0] = 7;
            free(p);
            return p[0];
        }
        """
        program, sema = parse_and_analyze(src)
        machine = Machine(program, sema, engine="bytecode")
        with pytest.raises(MemoryError_, match="use-after-free"):
            machine.run()


class TestScalarCodecs:
    def test_codec_cache_round_trip(self):
        from repro.interp import scalar_codec

        codec = scalar_codec("i")
        assert scalar_codec("i") is codec   # cached
        memory = Memory()
        addr = memory.alloc(8, HEAP)
        memory.write_scalar(addr, "i", -123456)
        assert memory.read_scalar(addr, "i", 4) == -123456

    def test_read_cstring_limit_preserved(self):
        memory = Memory()
        addr = memory.alloc(16, HEAP)
        payload = b"hello world"
        memory.data[addr:addr + len(payload)] = payload
        # NUL already present (alloc zero-fills)
        assert memory.read_cstring(addr) == "hello world"
        assert memory.read_cstring(addr, limit=5) == "hello"
        assert memory.read_cstring(addr, limit=0) == ""

    def test_read_cstring_unterminated_raises(self):
        memory = Memory()
        addr = memory.alloc(8, HEAP)
        end = len(memory.data)
        memory.data[addr:end] = b"x" * (end - addr)
        with pytest.raises(IndexError):
            memory.read_cstring(addr)


# ---------------------------------------------------------------------------
# schema-4 trajectory (wall clock + engines + backends + native tier)
# ---------------------------------------------------------------------------

class TestTrajectorySchema:
    def test_schema_is_4(self):
        from repro.bench import TRAJECTORY_SCHEMA

        assert TRAJECTORY_SCHEMA == 4

    def test_payload_carries_wall_engine_and_backend(self):
        from repro.bench import trajectory_payload
        from repro.bench.harness import Harness

        harness = Harness(thread_counts=(2,), engine="bytecode")
        res = harness.result("dijkstra")
        payload = trajectory_payload({"dijkstra": res})
        assert payload["schema"] == 4
        assert payload["engines"] == ["bytecode"]
        assert payload["backends"] == ["simulated"]
        bench = payload["benchmarks"]["dijkstra"]
        assert bench["engine"] == "bytecode"
        assert bench["backend"] == "simulated"
        wall = bench["wall_seconds"]
        assert wall["total"] > 0
        for phase in ("sequential-baseline", "profile", "parallel-runs"):
            assert wall[phase] > 0
        assert payload["summary"]["wall_seconds_total"] >= wall["total"]
        # schema 3: the expansion parallel run is wall-timed per
        # thread count
        assert set(bench["wallclock_seconds"]) == {"2"}
        assert bench["wallclock_seconds"]["2"] > 0
        # schema 4: not a native-tier run, so no compile accounting
        assert bench["native"] is None

    def test_schema_1_files_still_readable(self, tmp_path):
        from repro.bench import load_trajectory

        legacy = {
            "schema": 1,
            "generator": "repro.bench",
            "timestamp": "2026-01-01T00:00:00",
            "benchmarks": {"dijkstra": {"seq_cycles": 123.0}},
            "summary": {"overhead_opt_hmean": 1.1},
        }
        path = tmp_path / "BENCH_legacy.json"
        path.write_text(json.dumps(legacy))
        payload = load_trajectory(str(path))
        bench = payload["benchmarks"]["dijkstra"]
        assert bench["engine"] == "ast"
        assert bench["wall_seconds"] == {}
        assert payload["engines"] == ["ast"]
        assert payload["summary"]["wall_seconds_total"] == 0.0
        assert payload["summary"]["overhead_opt_hmean"] == 1.1
        # schema-3 normalization applies to schema-1 files too
        assert bench["backend"] == "simulated"
        assert bench["wallclock_seconds"] == {}
        assert payload["backends"] == ["simulated"]
        assert bench["native"] is None

    def test_schema_2_files_still_readable(self, tmp_path):
        from repro.bench import load_trajectory

        legacy = {
            "schema": 2,
            "generator": "repro.bench",
            "timestamp": "2026-01-01T00:00:00",
            "engines": ["bytecode"],
            "benchmarks": {"dijkstra": {
                "seq_cycles": 123.0, "engine": "bytecode",
                "wall_seconds": {"total": 1.5},
            }},
            "summary": {"wall_seconds_total": 1.5},
        }
        path = tmp_path / "BENCH_s2.json"
        path.write_text(json.dumps(legacy))
        payload = load_trajectory(str(path))
        bench = payload["benchmarks"]["dijkstra"]
        assert bench["engine"] == "bytecode"           # untouched
        assert bench["wall_seconds"] == {"total": 1.5}
        assert bench["backend"] == "simulated"         # normalized
        assert bench["wallclock_seconds"] == {}
        assert payload["backends"] == ["simulated"]
        assert bench["native"] is None                 # schema-4 norm

    def test_newer_schema_rejected(self, tmp_path):
        from repro.bench import load_trajectory

        path = tmp_path / "BENCH_future.json"
        path.write_text(json.dumps({"schema": 99, "benchmarks": {}}))
        with pytest.raises(ValueError, match="newer"):
            load_trajectory(str(path))

    def test_round_trip_through_emit(self, tmp_path):
        from repro.bench import load_trajectory
        from repro.bench.trajectory import emit_trajectory

        path = tmp_path / "BENCH_now.json"
        emit_trajectory({}, path=str(path))
        payload = load_trajectory(str(path))
        assert payload["schema"] == 4
        assert payload["engines"] == []

    def test_emit_into_directory(self, tmp_path):
        from repro.bench.trajectory import emit_trajectory

        outdir = tmp_path / "artifacts"
        outdir.mkdir()
        written = emit_trajectory({}, path=str(outdir))
        assert written.startswith(str(outdir))
        name = written[len(str(outdir)) + 1:]
        assert name.startswith("BENCH_") and name.endswith(".json")
        assert json.loads((outdir / name).read_text())["schema"] == 4

    def test_emit_creates_parent_dirs(self, tmp_path):
        from repro.bench.trajectory import emit_trajectory

        target = tmp_path / "a" / "b" / "BENCH_x.json"
        written = emit_trajectory({}, path=str(target))
        assert written == str(target)
        assert target.exists()

    def test_committed_baselines_still_readable(self):
        """Every BENCH_*.json checked into baselines/ (older schemas)
        must load under the schema-4 reader, fully normalized."""
        import glob

        from repro.bench import TRAJECTORY_SCHEMA, load_trajectory

        root = os.path.join(os.path.dirname(__file__), "..", "baselines")
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
        assert len(paths) >= 2, "expected committed baseline trajectories"
        for path in paths:
            payload = load_trajectory(path)
            assert payload["schema"] <= TRAJECTORY_SCHEMA
            assert payload["benchmarks"], path
            for name, bench in payload["benchmarks"].items():
                # schema ≤3 files predate the native tier
                assert bench["native"] is None, (path, name)
                assert "engine" in bench and "backend" in bench
                assert "wall_seconds" in bench
                assert "wallclock_seconds" in bench

    def test_native_block_round_trips(self, tmp_path):
        from repro.bench import load_trajectory
        from repro.bench.harness import BenchmarkResult
        from repro.bench.suite import get
        from repro.bench.trajectory import emit_trajectory

        res = BenchmarkResult(get("dijkstra"))
        res.engine = "native"
        res.native = {"so_cache_hits": 3, "so_cache_misses": 1,
                      "compile_seconds": 0.25}
        path = tmp_path / "BENCH_native.json"
        emit_trajectory({"dijkstra": res}, path=str(path))
        bench = load_trajectory(str(path))["benchmarks"]["dijkstra"]
        assert bench["engine"] == "native"
        assert bench["native"] == {"so_cache_hits": 3,
                                   "so_cache_misses": 1,
                                   "compile_seconds": 0.25}
