"""Benchmark harness unit tests (on a tiny synthetic benchmark so they
stay fast)."""

import pytest

from repro.bench.harness import Harness, VerificationError, _check_output
from repro.bench.suite import BenchmarkSpec, PaperNumbers

TINY = BenchmarkSpec(
    name="tiny-test-kernel",
    suite="Synthetic",
    source="""
int buf[24];
int out[8];
int main(void) {
    int i; int k; int b;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 8; i++) {
        for (k = 0; k < 24; k++) buf[k] = (i * k + 1) % 13;
        b = buf[23] + buf[2];
        out[i] = b;
    }
    for (i = 0; i < 8; i++) print_int(out[i]);
    return 0;
}
""",
    loop_labels=["L"],
    function="main",
    level=1,
    parallelism="DOALL",
    paper=PaperNumbers(loc=999, pct_time=90.0, privatized=1),
)


@pytest.fixture(scope="module")
def tiny_result():
    # bypass the global registry so all_benchmarks() stays pristine
    harness = Harness(thread_counts=(1, 2, 4))
    result = harness._compute(TINY)
    harness._cache[TINY.name] = result
    return result


class TestHarnessMeasurements:
    def test_sequential_baseline(self, tiny_result):
        assert len(tiny_result.seq_output) == 8
        assert tiny_result.seq_cycles > 0
        assert 0 < tiny_result.pct_time <= 1

    def test_breakdown_present(self, tiny_result):
        assert tiny_result.breakdown.expandable > 0

    def test_overheads_ordered(self, tiny_result):
        assert 0.9 < tiny_result.overhead_opt <= \
            tiny_result.overhead_unopt + 1e-9
        assert tiny_result.overhead_rtpriv > tiny_result.overhead_opt

    def test_parallel_points(self, tiny_result):
        assert set(tiny_result.expansion) == {1, 2, 4}
        assert tiny_result.expansion[4].loop_speedup > \
            tiny_result.expansion[1].loop_speedup
        assert tiny_result.expansion[4].memory_multiple >= 1.0

    def test_rtpriv_points(self, tiny_result):
        assert tiny_result.rtpriv[4].loop_speedup > 0

    def test_privatized_count(self, tiny_result):
        assert tiny_result.num_privatized == 1  # buf

    def test_caching(self):
        harness = Harness(thread_counts=(2,))
        harness._cache[TINY.name] = object()
        assert harness.result(TINY.name) is harness._cache[TINY.name]


class TestVerification:
    def test_check_output_raises(self):
        with pytest.raises(VerificationError):
            _check_output(TINY, ["1"], ["2"], "test")

    def test_check_output_passes(self):
        _check_output(TINY, ["1"], ["1"], "test")


class TestSuiteRegistry:
    def test_duplicate_registration_rejected(self):
        from repro.bench import suite
        saved = dict(suite._REGISTRY)
        try:
            suite._REGISTRY[TINY.name] = TINY
            with pytest.raises(ValueError):
                suite.register(TINY)
        finally:
            suite._REGISTRY.clear()
            suite._REGISTRY.update(saved)

    def test_loc_counts_nonempty_lines(self):
        assert TINY.loc == sum(
            1 for line in TINY.source.splitlines() if line.strip()
        )
