"""The native lowering tier: the ISSUE's bit-identity oracle.

Every benchmark kernel, expanded under both heap-legal copy layouts
(``interleaved`` rejects heap-allocated structures by design), must
produce a final address space byte-identical to the walker's on both
the simulated and the multi-core process backends — with *zero silent
fallbacks*: a run that claims to be native must have lowered cleanly
(no ``NL-*`` entries), dispatched real entry points, and routed every
worker chunk through the compiled ``.so``.

The module also pins the loud-fallback contract (``NL-NO-BODY``
per-function diagnostics, the ``NL-OBSERVERS`` race-checker gate) and
the serve pipeline's ``lower-native`` stage: cold compile, warm
in-memory hit, and a daemon-restart re-lower that reuses the ``.so``
disk cache without ever invoking the C compiler again.

Everything here skips as one block on hosts without a C toolchain.
"""

import os

import pytest

from repro.bench import all_benchmarks, get
from repro.diagnostics import DiagnosticSink
from repro.frontend import parse_and_analyze
from repro.interp import Machine
from repro.interp.native import native_backend_available
from repro.obs import Tracer
from repro.runtime import ParallelRunner, process_backend_available
from repro.service import (
    CompileOptions, Job, StageCache, StagedCompiler, run_job,
)
from repro.transform import expand_for_threads

_OK, _WHY = native_backend_available()
pytestmark = pytest.mark.skipif(
    not _OK, reason=f"native tier unavailable: {_WHY}")

_MC_OK, _MC_WHY = process_backend_available()
needs_process = pytest.mark.skipif(
    not _MC_OK, reason=f"process backend unavailable: {_MC_WHY}")

NTHREADS = 4
#: the copy layouts that admit heap-allocated structures (interleaved
#: raises TransformError on them — bonded mode is its documented out)
LAYOUTS = ("bonded", "adaptive")
KERNELS = tuple(spec.name for spec in all_benchmarks())
MATRIX = [(name, layout) for name in KERNELS for layout in LAYOUTS]
_IDS = [f"{name}-{layout}" for name, layout in MATRIX]

# small process-backend geometry: the kernels are interpreter-scale
SMALL_MC = {"segment_bytes": 1 << 21, "arena_bytes": 1 << 18}


def _heap_image(memory):
    """Live GLOBAL+HEAP allocations as (kind, label, addr, size, bytes)
    — the byte-level fingerprint the bit-identity contract promises."""
    return [
        (rec.kind, rec.label, rec.addr, rec.size,
         bytes(memory.data[rec.addr:rec.end]))
        for rec in memory._allocs
        if rec.live and rec.kind in ("global", "heap")
    ]


def _fingerprint(runner, outcome):
    cost = runner.machine.cost
    return {
        "exit": outcome.exit_code,
        "output": list(outcome.output),
        "cycles": cost.cycles,
        "instructions": cost.instructions,
        "loads": cost.loads,
        "stores": cost.stores,
        "loops": {
            label: (ex.makespan, ex.iterations)
            for label, ex in outcome.loops.items()
        },
        "heap": _heap_image(runner.machine.memory),
    }


# one expansion and one walker reference per (kernel, layout), shared
# by both backend cells: the walker run is the expensive half of every
# differential and is identical across backends by definition
_expansions = {}
_references = {}


def _expanded(name, layout):
    key = (name, layout)
    if key not in _expansions:
        spec = get(name)
        program, sema = parse_and_analyze(spec.source)
        _expansions[key] = expand_for_threads(
            program, sema, spec.loop_labels, optimize=True, layout=layout)
    return _expansions[key]


def _walker_reference(name, layout):
    key = (name, layout)
    if key not in _references:
        runner = ParallelRunner(_expanded(name, layout), NTHREADS,
                                engine="ast", backend="simulated",
                                check_races=False)
        outcome = runner.run()
        assert outcome.exit_code == 0, f"walker {name}/{layout} failed"
        _references[key] = _fingerprint(runner, outcome)
    return _references[key]


def _native_run(name, layout, backend):
    tracer = Tracer()
    kwargs = {}
    if backend == "process":
        kwargs.update(workers=NTHREADS, mc=dict(SMALL_MC))
    runner = ParallelRunner(_expanded(name, layout), NTHREADS,
                            engine="native", backend=backend,
                            check_races=False, tracer=tracer, **kwargs)
    outcome = runner.run()
    return runner, outcome, tracer.metrics.as_dict()


def _assert_lowered_clean(machine):
    """No silent fallback: every function and unit compiled.  The only
    tolerated NL entries are ``chunk:`` drivers on DOACROSS stage loops
    (cross-iteration control flow, reason ``NL-CONTROL``) — those loops
    still execute their bodies as native units, and the entry is the
    loud diagnostic the contract requires."""
    assert machine.engine == "native"
    assert machine.native_diag is None
    assert machine._low is not None
    bad = {k: v for k, v in machine._low.nl.items()
           if not (k.startswith("chunk:") and v == "NL-CONTROL")}
    assert bad == {}, f"silent NL fallbacks: {bad}"


class TestSimulatedDifferential:
    """native vs walker, simulated backend, full kernel × layout grid."""

    @pytest.mark.parametrize("name,layout", MATRIX, ids=_IDS)
    def test_bit_identical_to_walker(self, name, layout):
        runner, outcome, _ = _native_run(name, layout, "simulated")
        assert _fingerprint(runner, outcome) == _walker_reference(
            name, layout)
        _assert_lowered_clean(runner.machine)
        assert runner.machine.native_dispatches > 0


#: filled by the process differential; the aggregate gate below
#: asserts the suite as a whole exercised native DOALL chunk dispatch
_process_chunks = {"native": 0, "fallback": 0, "cells": 0}


@needs_process
class TestProcessDifferential:
    """native vs walker on the real multi-core backend."""

    @pytest.mark.parametrize("name,layout", MATRIX, ids=_IDS)
    def test_bit_identical_to_walker(self, name, layout):
        runner, outcome, metrics = _native_run(name, layout, "process")
        assert _fingerprint(runner, outcome) == _walker_reference(
            name, layout)
        _assert_lowered_clean(runner.machine)
        # worker-side contract: a fallback chunk would carry an NL-*
        # note and bump this metric — zero means every DOALL chunk the
        # audit routed to workers ran inside the .so
        assert metrics.get("runtime.native_fallbacks", 0) == 0
        chunks = metrics.get("runtime.native_chunks", 0)
        tasks = metrics.get("runtime.worker_tasks", 0)
        if get(name).parallelism == "DOALL":
            # every worker task was a native chunk — none degraded to
            # the Python iteration loop
            assert tasks > 0 and chunks == tasks
        else:
            # DOACROSS stages execute natively in the parent machine
            assert runner.machine.native_dispatches > 0
        _process_chunks["native"] += chunks
        _process_chunks["fallback"] += metrics.get(
            "runtime.native_fallbacks", 0)
        _process_chunks["cells"] += 1

    def test_suite_dispatched_native_chunks(self):
        # runs after the parametrized cells (file order): the suite
        # must have pushed real work through native worker entry points
        if _process_chunks["cells"] == 0:
            pytest.skip("process differential did not run")
        assert _process_chunks["native"] > 0
        assert _process_chunks["fallback"] == 0


class TestLoudFallbacks:
    """Fallbacks are per-function, diagnosed, and never change results."""

    def test_prototype_records_nl_no_body(self):
        # a body-less declaration cannot be lowered; the registry
        # records the NL-* reason and everything else still compiles
        src = """
        int helper(int x);
        int main(void) {
            int i; int s = 0;
            for (i = 0; i < 100; i++) { s = s + i; }
            print_int(s);
            return 0;
        }
        """
        program, sema = parse_and_analyze(src)
        machine = Machine(program, sema, engine="native")
        assert machine.run() == 0
        assert machine.output == ["4950"]
        assert machine.native_dispatches > 0
        assert machine._low.nl == {"fn:helper": "NL-NO-BODY"}

    def test_race_checker_gates_parent_with_nl_observers(self):
        # check_races hooks every access in Python; the runner keeps
        # the parent machine on the bytecode fallback and says so
        name, layout = "dijkstra", "bonded"
        sink = DiagnosticSink()
        runner = ParallelRunner(_expanded(name, layout), NTHREADS,
                                engine="native", backend="simulated",
                                check_races=True, sink=sink)
        outcome = runner.run()
        codes = [d.code for d in sink.diagnostics]
        assert "NL-OBSERVERS" in codes
        # gated, not wrong: parent dispatched nothing natively yet the
        # final state still matches the walker bit for bit
        assert runner.machine.native_dispatches == 0
        got = _fingerprint(runner, outcome)
        ref = _walker_reference(name, layout)
        assert got["heap"] == ref["heap"]
        assert got["output"] == ref["output"]
        assert got["exit"] == ref["exit"]


class TestServeLowerNative:
    """The lower-native stage: cold compile, warm hit, restart reuse."""

    KERNEL = get("dijkstra")

    def _job(self):
        return Job(source=self.KERNEL.source,
                   loop_labels=tuple(self.KERNEL.loop_labels),
                   nthreads=NTHREADS,
                   options=CompileOptions(engine="native"))

    def test_cold_warm_and_restart_without_recompiling(self, tmp_path):
        from repro.interp.native import backend as nb

        cache = StageCache(root=str(tmp_path))
        compiler = StagedCompiler(cache=cache)

        cc0 = nb.COMPILER_INVOCATIONS
        cold = compiler.compile(self._job())
        assert cold.report["lower-native"] == "miss"
        assert cold.ctx.native is not None
        # expanded program + sequential baseline → two compilations
        assert nb.COMPILER_INVOCATIONS == cc0 + 2

        warm = compiler.compile(self._job())
        assert warm.report["lower-native"] == "hit"
        assert nb.COMPILER_INVOCATIONS == cc0 + 2
        assert warm.ctx.native is not None

        # daemon restart: memory tier gone, .so disk cache survives —
        # the stage re-lowers in pure Python, zero compiler invocations
        tracer = Tracer()
        restarted = StagedCompiler(cache=StageCache(root=str(tmp_path)),
                                   tracer=tracer)
        again = restarted.compile(self._job())
        assert again.report["lower-native"] == "miss"
        assert nb.COMPILER_INVOCATIONS == cc0 + 2
        metrics = tracer.metrics.as_dict()
        assert metrics.get("native.so_cache_hit", 0) == 2
        assert metrics.get("native.so_cache_miss", 0) == 0
        assert os.path.isdir(os.path.join(str(tmp_path), "native-so"))

    def test_run_job_verifies_against_sequential(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        compiled = StagedCompiler(cache=cache).compile(self._job())
        outcome = run_job(compiled, cache=cache)
        assert outcome.verified
        assert outcome.exit_code == 0
