"""Transform corner cases: allocation flavors, sizeof on expanded
variables, recasting, nested structures, unusual loop shapes."""


from repro.frontend import parse_and_analyze, print_program
from repro.interp import Machine
from repro.runtime import run_parallel
from repro.transform import expand_for_threads


def check(source, labels=("L",), nthreads=(1, 4), **kw):
    program, sema = parse_and_analyze(source)
    base = Machine(program, sema)
    base.run()
    result = expand_for_threads(program, sema, list(labels), **kw)
    for n in nthreads:
        outcome = run_parallel(result, n)
        assert outcome.output == base.output, (n, outcome.output)
        assert not outcome.races
    return result, print_program(result.program)


class TestAllocationFlavors:
    def test_calloc_expansion(self):
        result, text = check("""
        int out[4];
        int main(void) {
            int i; int k;
            int *w = (int*)calloc(6, sizeof(int));
            #pragma expand parallel(doall)
            L: for (i = 0; i < 4; i++) {
                for (k = 0; k < 6; k++) w[k] = i + k;
                out[i] = w[5];
            }
            for (i = 0; i < 4; i++) print_int(out[i]);
            return 0;
        }
        """)
        # the size argument is multiplied by N (total bytes x N)
        assert "calloc(6, sizeof(int) * __nthreads)" in text

    def test_per_iteration_malloc_free(self):
        """Allocation and free inside the loop: each thread frees only
        chunks it allocated; freelist reuse stays slice-disjoint."""
        check("""
        int out[8];
        int main(void) {
            int i; int k;
            int *w;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 8; i++) {
                w = (int*)malloc(sizeof(int) * 4);
                for (k = 0; k < 4; k++) w[k] = i * k;
                out[i] = w[3];
                free(w);
            }
            for (i = 0; i < 8; i++) print_int(out[i]);
            return 0;
        }
        """, nthreads=(2, 4, 8))

    def test_sizeof_expr_on_expanded_array(self):
        """sizeof(buf) must keep meaning the ORIGINAL size after
        expansion (it feeds memset lengths)."""
        result, text = check("""
        int buf[8];
        int out[4];
        int main(void) {
            int i; int k;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 4; i++) {
                memset(buf, 0, sizeof(buf));
                for (k = 0; k < 8; k++) buf[k] = buf[k] + i;
                out[i] = buf[7];
            }
            for (i = 0; i < 4; i++) print_int(out[i]);
            return 0;
        }
        """)
        assert "sizeof(int[8])" in text

    def test_two_chunks_same_pointer_group(self):
        check("""
        int out[6];
        int main(void) {
            int i; int k;
            int *a = (int*)malloc(sizeof(int) * 4);
            int *b = (int*)malloc(sizeof(int) * 4);
            #pragma expand parallel(doall)
            L: for (i = 0; i < 6; i++) {
                for (k = 0; k < 4; k++) { a[k] = i; b[k] = i * 2; }
                out[i] = a[3] + b[3];
            }
            for (i = 0; i < 6; i++) print_int(out[i]);
            return 0;
        }
        """)


class TestRecasting:
    def test_short_int_recast_private(self):
        """The full bzip2 pattern through the whole pipeline."""
        result, text = check("""
        int out[4];
        int main(void) {
            int i; int k;
            int *zp = (int*)malloc(sizeof(int) * 4);
            short *sp;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 4; i++) {
                sp = (short*)zp;
                for (k = 0; k < 8; k++) sp[k] = (short)(i * 10 + k);
                out[i] = zp[0] + zp[3];
            }
            for (i = 0; i < 4; i++) print_int(out[i]);
            return 0;
        }
        """)
        # both views redirect by the same BYTE offset: the 16-byte
        # chunk is tid*8 shorts and tid*4 ints (constant spans folded)
        assert "* 8" in text and "* 4" in text

    def test_char_view_of_int_chunk(self):
        check("""
        int out[4];
        int main(void) {
            int i; int k;
            int *zp = (int*)malloc(sizeof(int) * 2);
            char *cp;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 4; i++) {
                cp = (char*)zp;
                for (k = 0; k < 8; k++) cp[k] = (char)(i + k);
                out[i] = zp[1];
            }
            for (i = 0; i < 4; i++) print_int(out[i]);
            return 0;
        }
        """)


class TestStructShapes:
    def test_nested_struct_privatization(self):
        check("""
        struct inner { int lo; int hi; };
        struct outer { struct inner a; struct inner b; int tag; };
        struct outer sc;
        int out[5];
        int main(void) {
            int i;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 5; i++) {
                sc.a.lo = i;
                sc.a.hi = i * 2;
                sc.b = sc.a;
                sc.tag = sc.b.lo + sc.b.hi;
                out[i] = sc.tag;
            }
            for (i = 0; i < 5; i++) print_int(out[i]);
            return 0;
        }
        """)

    def test_struct_with_embedded_array(self):
        check("""
        struct box { int vals[4]; int n; };
        struct box bx;
        int out[5];
        int main(void) {
            int i; int k;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 5; i++) {
                bx.n = 0;
                for (k = 0; k < 4; k++) {
                    bx.vals[k] = i + k;
                    bx.n = bx.n + bx.vals[k];
                }
                out[i] = bx.n;
            }
            for (i = 0; i < 5; i++) print_int(out[i]);
            return 0;
        }
        """)

    def test_pointer_field_chain(self):
        check("""
        struct node { int v; struct node *next; };
        struct node *head;
        int out[5];
        int main(void) {
            int i; int j;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 5; i++) {
                head = 0;
                for (j = 0; j < 3; j++) {
                    struct node *x =
                        (struct node*)malloc(sizeof(struct node));
                    x->v = i * 10 + j;
                    x->next = head;
                    head = x;
                }
                out[i] = head->v + head->next->next->v;
                while (head) {
                    struct node *d;
                    d = head;
                    head = head->next;
                    free(d);
                }
            }
            for (i = 0; i < 5; i++) print_int(out[i]);
            return 0;
        }
        """, nthreads=(2, 4, 8))


class TestLoopShapes:
    def test_doacross_for_loop(self):
        check("""
        int buf[6];
        unsigned int acc;
        int main(void) {
            int i; int k;
            #pragma expand parallel(doacross)
            L: for (i = 0; i < 10; i++) {
                for (k = 0; k < 6; k++) buf[k] = i * k + 2;
                acc = acc * 31 + (unsigned int)buf[5];
            }
            print_int((int)(acc & 0x7fffffff));
            return 0;
        }
        """, nthreads=(2, 4, 8))

    def test_step_by_two(self):
        check("""
        int buf[4];
        int out[12];
        int main(void) {
            int i; int k;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 12; i += 2) {
                for (k = 0; k < 4; k++) buf[k] = i + k;
                out[i] = buf[3];
            }
            for (i = 0; i < 12; i += 2) print_int(out[i]);
            return 0;
        }
        """)

    def test_le_bound(self):
        check("""
        int buf[4];
        int out[8];
        int main(void) {
            int i; int k;
            #pragma expand parallel(doall)
            L: for (i = 0; i <= 7; i++) {
                for (k = 0; k < 4; k++) buf[k] = i - k;
                out[i] = buf[0];
            }
            for (i = 0; i < 8; i++) print_int(out[i]);
            return 0;
        }
        """)

    def test_empty_iteration_space(self):
        check("""
        int buf[4];
        int main(void) {
            int i; int k;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 0; i++) {
                for (k = 0; k < 4; k++) buf[k] = i;
            }
            print_int(42);
            return 0;
        }
        """)

    def test_candidate_loop_in_helper_function(self):
        check("""
        int buf[4];
        int out[6];
        void worker(void) {
            int i; int k;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 6; i++) {
                for (k = 0; k < 4; k++) buf[k] = i * k;
                out[i] = buf[3];
            }
        }
        int main(void) {
            int i;
            worker();
            for (i = 0; i < 6; i++) print_int(out[i]);
            return 0;
        }
        """)
