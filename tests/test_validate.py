"""Transform-validator tests: clean on every benchmark, loud on
sabotaged results."""

import pytest

from repro.bench import all_benchmarks, get
from repro.frontend import ast, parse_and_analyze
from repro.transform import expand_for_threads, validate_transform


@pytest.mark.parametrize("name", [s.name for s in all_benchmarks()])
def test_benchmarks_validate_clean(name):
    spec = get(name)
    program, sema = parse_and_analyze(spec.source)
    result = expand_for_threads(program, sema, spec.loop_labels)
    assert validate_transform(result) == []


@pytest.fixture()
def small_result():
    source = """
    int g;
    int buf[4];
    int out[5];
    int main(void) {
        int i; int k;
        int *w = (int*)malloc(sizeof(int) * 3);
        #pragma expand parallel(doall)
        L: for (i = 0; i < 5; i++) {
            g = i;
            for (k = 0; k < 4; k++) buf[k] = g + k;
            for (k = 0; k < 3; k++) w[k] = buf[k];
            out[i] = w[2];
        }
        for (i = 0; i < 5; i++) print_int(out[i]);
        return 0;
    }
    """
    program, sema = parse_and_analyze(source)
    return expand_for_threads(program, sema, ["L"])


class TestSabotageDetection:
    def test_clean_baseline(self, small_result):
        assert validate_transform(small_result) == []

    def test_detects_unexpanded_allocation(self, small_result):
        for fn in small_result.program.functions():
            for node in fn.body.walk():
                if isinstance(node, ast.Call) and \
                        node.callee_name == "malloc":
                    # strip the xN multiplication
                    if isinstance(node.args[0], ast.Binary):
                        node.args[0] = node.args[0].left
        problems = validate_transform(small_result)
        assert any("multiply" in p for p in problems)

    def test_detects_missing_init_call(self, small_result):
        main = small_result.program.function("main")
        main.body.stmts.pop(0)
        problems = validate_transform(small_result)
        assert any("__expand_init" in p for p in problems)

    def test_detects_lost_pragma(self, small_result):
        small_result.loops[0].loop.pragmas.clear()
        problems = validate_transform(small_result)
        assert any("pragma" in p for p in problems)

    def test_detects_broken_vla(self, small_result):
        for evar in small_result.expansion.expanded_vars.values():
            if evar.mode == "vla":
                evar.decl.vla_length = None
        problems = validate_transform(small_result)
        assert any("length" in p for p in problems)

    def test_detects_name_breakage(self, small_result):
        # rename a referenced global out from under its uses
        for decl in small_result.program.globals():
            if decl.name == "out":
                decl.name = "renamed_out"
        problems = validate_transform(small_result)
        assert any("re-analysis" in p for p in problems)
