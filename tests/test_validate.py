"""Transform-validator tests: clean on every benchmark, loud on
sabotaged results — now asserting on structured diagnostic codes."""

import pytest

from repro.bench import all_benchmarks, get
from repro.diagnostics import Diagnostic, DiagnosticSink
from repro.frontend import ast, parse_and_analyze
from repro.transform import expand_for_threads, validate_transform


@pytest.mark.parametrize("name", [s.name for s in all_benchmarks()])
def test_benchmarks_validate_clean(name):
    spec = get(name)
    program, sema = parse_and_analyze(spec.source)
    result = expand_for_threads(program, sema, spec.loop_labels)
    assert validate_transform(result) == []


@pytest.fixture()
def small_result():
    source = """
    int g;
    int buf[4];
    int out[5];
    int main(void) {
        int i; int k;
        int *w = (int*)malloc(sizeof(int) * 3);
        #pragma expand parallel(doall)
        L: for (i = 0; i < 5; i++) {
            g = i;
            for (k = 0; k < 4; k++) buf[k] = g + k;
            for (k = 0; k < 3; k++) w[k] = buf[k];
            out[i] = w[2];
        }
        for (i = 0; i < 5; i++) print_int(out[i]);
        return 0;
    }
    """
    program, sema = parse_and_analyze(source)
    return expand_for_threads(program, sema, ["L"])


class TestSabotageDetection:
    def test_clean_baseline(self, small_result):
        assert validate_transform(small_result) == []

    def test_detects_unexpanded_allocation(self, small_result):
        for fn in small_result.program.functions():
            for node in fn.body.walk():
                if isinstance(node, ast.Call) and \
                        node.callee_name == "malloc":
                    # strip the xN multiplication
                    if isinstance(node.args[0], ast.Binary):
                        node.args[0] = node.args[0].left
        problems = validate_transform(small_result)
        assert any(d.code == "VALID-ALLOC-SCALE" for d in problems)
        assert any("multiply" in d.message for d in problems)

    def test_detects_missing_init_call(self, small_result):
        main = small_result.program.function("main")
        main.body.stmts.pop(0)
        problems = validate_transform(small_result)
        assert any(d.code == "VALID-INIT-FN" for d in problems)
        assert any("__expand_init" in d.message for d in problems)

    def test_detects_lost_pragma(self, small_result):
        small_result.loops[0].loop.pragmas.clear()
        problems = validate_transform(small_result)
        assert any(d.code == "VALID-LOOP-PRAGMA" for d in problems)
        # per-loop findings carry the loop label
        assert any(d.loop == "L" for d in problems)

    def test_detects_broken_vla(self, small_result):
        for evar in small_result.expansion.expanded_vars.values():
            if evar.mode == "vla":
                evar.decl.vla_length = None
        problems = validate_transform(small_result)
        assert any(d.code == "VALID-VLA-SHAPE" for d in problems)
        assert any("length" in d.message for d in problems)

    def test_detects_name_breakage(self, small_result):
        # rename a referenced global out from under its uses
        for decl in small_result.program.globals():
            if decl.name == "out":
                decl.name = "renamed_out"
        problems = validate_transform(small_result)
        assert any(d.code == "VALID-REANALYZE" for d in problems)


class TestStructuredForm:
    def test_diagnostics_are_structured(self, small_result):
        small_result.loops[0].loop.pragmas.clear()
        problems = validate_transform(small_result)
        assert problems and all(
            isinstance(d, Diagnostic) for d in problems
        )
        assert all(d.phase == "validate" for d in problems)
        assert all(d.severity == "error" for d in problems)
        assert all(d.code.startswith("VALID-") for d in problems)

    def test_sink_accumulates(self, small_result):
        small_result.loops[0].loop.pragmas.clear()
        sink = DiagnosticSink()
        problems = validate_transform(small_result, sink=sink)
        assert sink.diagnostics == problems
        assert sink.by_code("VALID-LOOP-PRAGMA")
