"""Differential property testing of the whole pipeline.

Hypothesis generates small loop programs from a grammar of privatizable
patterns; for each we assert the reproduction's core soundness
property: *the transformed program, run with any thread count, produces
exactly the sequential original's output, race-free*.
"""

from hypothesis import given, settings, strategies as st

from repro.frontend import parse_and_analyze
from repro.interp import Machine
from repro.runtime import run_parallel
from repro.transform import expand_for_threads


@st.composite
def loop_program(draw):
    """A random program around a privatizable candidate loop."""
    iters = draw(st.integers(3, 9))
    buf_len = draw(st.integers(2, 8))
    use_struct = draw(st.booleans())
    use_heap = draw(st.booleans())
    use_helper = draw(st.booleans())
    doacross = draw(st.booleans())
    ops = draw(st.lists(
        st.sampled_from(["+", "*", "^", "|"]), min_size=1, max_size=3
    ))

    decls = [f"int buf[{buf_len}];", f"int out[{iters}];"]
    body_init = []
    if use_struct:
        decls.append("struct st { int a; int b; };")
        decls.append("struct st sc;")
    if use_heap:
        body_init.append(
            f"int *hp = (int*)malloc(sizeof(int) * {buf_len});"
        )
    helper = ""
    if use_helper:
        helper = f"""
        int mix(int x) {{ return (x * 7) % 23 + 1; }}
        """

    expr = "i"
    for k, op in enumerate(ops):
        expr = f"(({expr}) {op} (k + {k + 1}))"
    if use_helper:
        expr = f"mix({expr})"

    inner = [f"for (k = 0; k < {buf_len}; k++) buf[k] = {expr};"]
    acc_src = f"buf[{buf_len - 1}]"
    if use_heap:
        inner.append(
            f"for (k = 0; k < {buf_len}; k++) hp[k] = buf[k] + 1;"
        )
        acc_src = f"(hp[0] + buf[{buf_len - 1}])"
    if use_struct:
        inner.append(f"sc.a = {acc_src}; sc.b = sc.a * 2;")
        acc_src = "(sc.a + sc.b)"
    inner.append(f"out[i] = {acc_src};")
    if doacross:
        decls.append("int chain;")
        inner.append("chain = chain * 5 + out[i];")

    pragma = "doacross" if doacross else "doall"
    body = "\n            ".join(inner)
    heap_decl = "\n        ".join(body_init)
    source = f"""
    {' '.join(decls)}
    {helper}
    int main(void) {{
        int i; int k;
        {heap_decl}
        #pragma expand parallel({pragma})
        L: for (i = 0; i < {iters}; i++) {{
            {body}
        }}
        for (i = 0; i < {iters}; i++) print_int(out[i]);
        {"print_int(chain);" if doacross else ""}
        return 0;
    }}
    """
    return source


class TestDifferential:
    @given(loop_program(), st.sampled_from([2, 3, 4, 8]))
    @settings(max_examples=25, deadline=None)
    def test_parallel_matches_sequential(self, source, nthreads):
        program, sema = parse_and_analyze(source)
        base = Machine(program, sema)
        base.run()
        result = expand_for_threads(program, sema, ["L"])
        outcome = run_parallel(result, nthreads)
        assert outcome.output == base.output
        assert not outcome.races

    @given(loop_program())
    @settings(max_examples=10, deadline=None)
    def test_unoptimized_also_sound(self, source):
        program, sema = parse_and_analyze(source)
        base = Machine(program, sema)
        base.run()
        result = expand_for_threads(program, sema, ["L"], optimize=False)
        outcome = run_parallel(result, 4)
        assert outcome.output == base.output
        assert not outcome.races

    @given(loop_program())
    @settings(max_examples=10, deadline=None)
    def test_single_thread_transform_is_identity_on_output(self, source):
        program, sema = parse_and_analyze(source)
        base = Machine(program, sema)
        base.run()
        result = expand_for_threads(program, sema, ["L"])
        machine = Machine(result.program, result.sema)
        machine.nthreads = 1
        machine.run()
        assert machine.output == base.output
