"""Runtime-privatization and sync-only baseline tests."""

import pytest

from repro.analysis import build_access_classes, classify, profile_loop
from repro.baselines import (
    MONITOR_COST, run_runtime_privatization, run_sync_only,
)
from repro.frontend import ast, parse_and_analyze
from repro.interp import Machine


SRC = """
int buf[8];
int out[6];
int main(void) {
    int i; int k;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 6; i++) {
        for (k = 0; k < 8; k++) buf[k] = i * k + 1;
        out[i] = buf[7];
    }
    for (i = 0; i < 6; i++) print_int(out[i]);
    return 0;
}
"""

QUEUE_SRC = """
struct q { int v; struct q *next; };
struct q *head;
int out[5];
int main(void) {
    int i; int j; int s;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 5; i++) {
        head = 0;
        for (j = 0; j <= i; j++) {
            struct q *x = (struct q*)malloc(sizeof(struct q));
            x->v = j + i;
            x->next = head;
            head = x;
        }
        s = 0;
        while (head) {
            struct q *t;
            t = head;
            head = head->next;
            s += t->v;
            free(t);
        }
        out[i] = s;
    }
    for (i = 0; i < 5; i++) print_int(out[i]);
    return 0;
}
"""


def setup(source):
    program, sema = parse_and_analyze(source)
    base = Machine(program, sema)
    base.run()
    profiles = {}
    privs = {}
    loop = ast.find_loop(program, "L")
    profile = profile_loop(program, sema, loop)
    profiles["L"] = profile
    privs["L"] = classify(profile.ddg, build_access_classes(profile.ddg))
    return program, sema, base, profiles, privs


class TestRuntimePrivatization:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_output_preserved(self, n):
        program, sema, base, profiles, privs = setup(SRC)
        outcome = run_runtime_privatization(
            program, sema, ["L"], profiles, privs, nthreads=n
        )
        assert outcome.output == base.output

    def test_linked_queue_with_free_invalidation(self):
        """Per-iteration malloc/free: freed structures must drop their
        thread-local copies so reuse starts clean."""
        program, sema, base, profiles, privs = setup(QUEUE_SRC)
        for n in (2, 4):
            outcome = run_runtime_privatization(
                program, sema, ["L"], profiles, privs, nthreads=n
            )
            assert outcome.output == base.output

    def test_monitoring_adds_cycles(self):
        program, sema, base, profiles, privs = setup(SRC)
        outcome = run_runtime_privatization(
            program, sema, ["L"], profiles, privs, nthreads=1
        )
        n_private_accesses = sum(
            profiles["L"].ddg.dyn_counts.get(site, 0)
            for site in privs["L"].private_sites
        )
        assert outcome.total_cycles >= (
            base.cost.cycles + n_private_accesses * MONITOR_COST * 0.5
        )

    def test_copies_add_memory(self):
        program, sema, base, profiles, privs = setup(SRC)
        outcome = run_runtime_privatization(
            program, sema, ["L"], profiles, privs, nthreads=4
        )
        assert outcome.peak_memory > base.memory.peak_footprint()

    def test_original_program_untouched(self):
        """The baseline runs the original AST unchanged: a plain
        sequential run afterwards still works."""
        program, sema, base, profiles, privs = setup(SRC)
        run_runtime_privatization(
            program, sema, ["L"], profiles, privs, nthreads=4
        )
        again = Machine(program, sema)
        again.run()
        assert again.output == base.output


class TestSyncOnly:
    def test_output_preserved(self):
        program, sema, base, profiles, privs = setup(SRC)
        outcome = run_sync_only(program, sema, ["L"], profiles, nthreads=8)
        assert outcome.output == base.output

    def test_no_speedup(self):
        """Everything with carried deps is serialized: the loop at 8
        threads is no faster than at 1."""
        program, sema, base, profiles, _ = setup(SRC)
        o1 = run_sync_only(program, sema, ["L"], profiles, nthreads=1)
        o8 = run_sync_only(program, sema, ["L"], profiles, nthreads=8)
        t1 = o1.loop("L").makespan + o1.loop("L").runtime_cycles
        t8 = o8.loop("L").makespan + o8.loop("L").runtime_cycles
        assert t8 > t1 * 0.75
