"""Andersen points-to analysis tests, including a soundness check
against the dynamic profiler's observed objects on every benchmark."""

import pytest

from repro.analysis import analyze_pointsto, profile_loop
from repro.analysis.privatization import classify
from repro.frontend import ast, parse_and_analyze


def pts_env(source):
    program, sema = parse_and_analyze(source)
    result = analyze_pointsto(program, sema)
    decls = {}
    for fn in program.functions():
        for node in fn.body.walk():
            if isinstance(node, ast.DeclStmt):
                for d in node.decls:
                    decls[d.name] = d
    for d in sema.globals:
        decls[d.name] = d
    return program, result, decls


def points_to_labels(result, decl):
    objs = result.pts_of(("obj", ("var", decl.nid)))
    return {result.object_labels.get(o, str(o)) for o in objs}


class TestBasics:
    def test_address_of(self):
        _, r, d = pts_env(
            "int main(void) { int a; int *p = &a; return *p; }"
        )
        assert points_to_labels(r, d["p"]) == {"a"}

    def test_copy_propagates(self):
        _, r, d = pts_env(
            "int main(void) { int a; int *p = &a; int *q; q = p;"
            " return *q; }"
        )
        assert points_to_labels(r, d["q"]) == {"a"}

    def test_malloc_site_object(self):
        _, r, d = pts_env(
            "int main(void) { int *p = (int*)malloc(8); free(p); return 0; }"
        )
        labels = points_to_labels(r, d["p"])
        assert len(labels) == 1 and "malloc" in next(iter(labels))

    def test_two_sites_union(self):
        _, r, d = pts_env("""
        int main(void) {
            int *p;
            if (1) { p = (int*)malloc(4); } else { p = (int*)malloc(8); }
            free(p);
            return 0;
        }
        """)
        assert len(points_to_labels(r, d["p"])) == 2

    def test_store_and_load_through_pointer(self):
        _, r, d = pts_env("""
        int main(void) {
            int a;
            int *p = &a;
            int **pp = &p;
            int *q;
            q = *pp;
            return *q;
        }
        """)
        assert "a" in points_to_labels(r, d["q"])

    def test_array_of_pointers(self):
        _, r, d = pts_env("""
        int main(void) {
            int a; int b;
            int *tab[2];
            tab[0] = &a;
            tab[1] = &b;
            int *q = tab[1];
            return *q;
        }
        """)
        assert {"a", "b"} <= points_to_labels(r, d["q"])

    def test_linked_structure(self):
        _, r, d = pts_env("""
        struct n { int v; struct n *next; };
        int main(void) {
            struct n *head = 0;
            int i;
            for (i = 0; i < 3; i++) {
                struct n *x = (struct n*)malloc(sizeof(struct n));
                x->next = head;
                head = x;
            }
            struct n *walker = head;
            while (walker) { walker = walker->next; }
            return 0;
        }
        """)
        labels = points_to_labels(r, d["walker"])
        assert any("malloc" in lbl for lbl in labels)

    def test_function_return_flows(self):
        _, r, d = pts_env("""
        int g;
        int *get(void) { return &g; }
        int main(void) { int *p = get(); return *p; }
        """)
        assert "g" in points_to_labels(r, d["p"])

    def test_param_binding(self):
        program, r, d = pts_env("""
        int use(int *q) { return *q; }
        int main(void) { int a; int aux = use(&a); return aux; }
        """)
        fn = program.function("use")
        q = fn.params[0]
        assert "a" in points_to_labels(r, q)

    def test_cast_preserves_targets(self):
        _, r, d = pts_env("""
        int main(void) {
            int *zp = (int*)malloc(8);
            short *sp = (short*)zp;
            sp[0] = 1;
            free(zp);
            return 0;
        }
        """)
        assert points_to_labels(r, d["sp"]) == points_to_labels(r, d["zp"])

    def test_memcpy_copies_pointers(self):
        _, r, d = pts_env("""
        int main(void) {
            int a;
            int *src[1];
            int *dst[1];
            src[0] = &a;
            memcpy(dst, src, sizeof(src));
            int *q = dst[0];
            return *q;
        }
        """)
        assert "a" in points_to_labels(r, d["q"])

    def test_pointer_arithmetic_keeps_object(self):
        _, r, d = pts_env("""
        int main(void) {
            int a[8];
            int *p = &a[2];
            int *q = p + 3;
            return *q;
        }
        """)
        assert "a" in points_to_labels(r, d["q"])

    def test_realloc_flows_old_contents(self):
        _, r, d = pts_env("""
        int main(void) {
            int a;
            int **tab = (int**)malloc(8);
            tab[0] = &a;
            tab = (int**)realloc(tab, 16);
            int *q = tab[0];
            return *q;
        }
        """)
        assert "a" in points_to_labels(r, d["q"])


class TestAccessObjects:
    def test_objects_of_deref(self):
        program, r, d = pts_env("""
        int main(void) {
            int *p = (int*)malloc(8);
            *p = 3;
            free(p);
            return 0;
        }
        """)
        main = program.function("main")
        derefs = [
            n for n in main.body.walk()
            if isinstance(n, ast.Unary) and n.op == "*"
        ]
        objs = r.objects_of_access(derefs[0].nid)
        assert objs and all(kind == "heap" for kind, _ in objs)

    def test_objects_of_global_index(self):
        program, r, d = pts_env(
            "int g[4]; int main(void) { g[1] = 2; return g[1]; }"
        )
        main = program.function("main")
        idx = next(n for n in main.body.walk() if isinstance(n, ast.Index))
        objs = r.objects_of_access(idx.nid)
        assert objs == {("var", d["g"].nid)}


@pytest.mark.slow
class TestSoundnessAgainstProfile:
    """The static analysis must over-approximate the dynamic truth:
    every object a private site touched at run time must be in its
    static points-to set.  Checked on every benchmark kernel."""

    @pytest.mark.parametrize("name", [
        "dijkstra", "md5", "256.bzip2", "456.hmmer", "470.lbm",
        "mpeg2-encoder", "mpeg2-decoder", "h263-encoder",
    ])
    def test_benchmark_soundness(self, name):
        from repro.bench import get
        from repro.transform.pipeline import _normalize_profile_obj

        spec = get(name)
        program, sema = parse_and_analyze(spec.source)
        pointsto = analyze_pointsto(program, sema)
        for label in spec.loop_labels:
            loop = ast.find_loop(program, label)
            profile = profile_loop(program, sema, loop)
            priv = classify(profile.ddg)
            for site in priv.private_sites:
                static = pointsto.objects_of_access(site)
                if not static:
                    continue  # site form not tracked (conservative path)
                for key in profile.site_objects.get(site, ()):
                    norm = _normalize_profile_obj(key)
                    if norm is None:
                        continue
                    assert norm in static, (
                        name, site, norm,
                        {pointsto.object_labels.get(o, o) for o in static},
                    )
