"""End-to-end pipeline tests on the paper's own examples: Figure 1
(bzip2's zptr), Figure 3 (hmmer's two-site mx), plus pipeline plumbing
(origins, serial-statement planning, expansion-source modes)."""

import pytest

from repro.frontend import ast, parse_and_analyze, print_program
from repro.interp import Machine
from repro.runtime import run_parallel
from repro.transform import DOACROSS, DOALL, expand_for_threads
from repro.transform.pipeline import parse_loop_kind
from repro.transform.rewrite import origin_of

FIGURE1 = """
int results[6];
int main(void) {
    int m = 12;
    int b;
    int k;
    int blk;
    int *zptr = (int*)malloc(sizeof(int) * m);
    #pragma expand parallel(doall)
    L: for (blk = 0; blk < 6; blk++) {
        for (k = 0; k < m; k++) zptr[k] = blk * 100 + k;  // initialize
        b = 0;
        for (k = 0; k < m; k++) b += zptr[k];
        results[blk] = b;
    }
    for (k = 0; k < 6; k++) print_int(results[k]);
    return 0;
}
"""

FIGURE3 = """
int out[6];
int main(void) {
    int it;
    int k;
    int m1 = 40;
    int m2 = 24;
    int n;
    int *mx;
    #pragma expand parallel(doall)
    L: for (it = 0; it < 6; it++) {
        if (it % 2) {
            mx = (int*)malloc(m1);
            n = 10;
        } else {
            mx = (int*)malloc(m2);
            n = 6;
        }
        for (k = 0; k < n; k++) mx[k] = it * 10 + k;
        out[it] = mx[n - 1];
        free(mx);
    }
    for (k = 0; k < 6; k++) print_int(out[k]);
    return 0;
}
"""


def run_both(source, labels=("L",), **kw):
    program, sema = parse_and_analyze(source)
    base = Machine(program, sema)
    base.run()
    result = expand_for_threads(program, sema, list(labels), **kw)
    return program, sema, base, result


class TestFigure1:
    def test_transformed_shape(self):
        _, _, base, result = run_both(FIGURE1)
        text = print_program(result.program)
        # malloc enlarged by N
        assert "* m * __nthreads)" in text
        # span records the original size
        assert "zptr.span = sizeof(int) * m;" in text
        # private dereferences redirected by tid*span
        assert "__tid * zptr.span / 4" in text

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_parallel_equivalent(self, n):
        _, _, base, result = run_both(FIGURE1)
        outcome = run_parallel(result, n)
        assert outcome.output == base.output and not outcome.races

    def test_zptr_variable_itself_shared(self):
        """zptr is assigned before the loop and only read inside: the
        pointer variable is a shared access; only the chunk expands."""
        _, _, _, result = run_both(FIGURE1)
        expanded_names = {
            ev.decl.name for ev in result.expansion.expanded_vars.values()
        }
        assert "zptr" not in expanded_names
        assert len(result.expansion.expanded_alloc_origins) == 1


class TestFigure3:
    def test_two_malloc_sites_expanded(self):
        _, _, _, result = run_both(FIGURE3)
        assert len(result.expansion.expanded_alloc_origins) == 2

    def test_spans_stay_dynamic(self):
        """m1 != m2, so no constant span can be substituted — exactly
        why the paper needs runtime spans here."""
        _, _, _, result = run_both(FIGURE3)
        assert result.redirect_stats.dynamic_span > 0

    def test_mx_pointer_variable_is_expanded(self):
        """mx is written each iteration before use: the pointer
        variable itself is private (scalar expansion of a fat pointer)."""
        _, _, _, result = run_both(FIGURE3)
        expanded_names = {
            ev.decl.name for ev in result.expansion.expanded_vars.values()
        }
        assert "mx" in expanded_names

    @pytest.mark.parametrize("n", [1, 3, 8])
    def test_parallel_equivalent(self, n):
        _, _, base, result = run_both(FIGURE3)
        outcome = run_parallel(result, n)
        assert outcome.output == base.output and not outcome.races


class TestPipelinePlumbing:
    def test_origin_tracking_to_candidate_loop(self):
        program, sema, _, result = run_both(FIGURE1)
        orig_loop = ast.find_loop(program, "L")
        assert origin_of(result.loops[0].loop) == orig_loop.nid

    def test_loop_kind_from_pragma(self):
        program, _ = parse_and_analyze(FIGURE1)
        assert parse_loop_kind(ast.find_loop(program, "L")) == DOALL

    def test_doacross_kind(self):
        src = FIGURE1.replace("parallel(doall)", "parallel(doacross)")
        program, _ = parse_and_analyze(src)
        assert parse_loop_kind(ast.find_loop(program, "L")) == DOACROSS

    def test_expansion_source_profile_matches_static(self):
        _, _, base1, r_static = run_both(FIGURE1, expansion_source="static")
        _, _, base2, r_profile = run_both(FIGURE1, expansion_source="profile")
        assert (len(r_static.expansion.expanded_alloc_origins)
                == len(r_profile.expansion.expanded_alloc_origins))
        m = Machine(r_profile.program, r_profile.sema)
        m.nthreads = 1
        m.run()
        assert m.output == base2.output

    def test_serial_statements_detected_for_doacross(self):
        src = """
        int acc;
        int scratch[4];
        int out[6];
        int main(void) {
            int i; int k;
            #pragma expand parallel(doacross)
            L: for (i = 0; i < 6; i++) {
                for (k = 0; k < 4; k++) scratch[k] = i + k;
                out[i] = scratch[3];
                acc = acc * 3 + out[i];
            }
            print_int(acc);
            return 0;
        }
        """
        _, _, base, result = run_both(src)
        tl = result.loops[0]
        assert tl.kind == DOACROSS
        assert len(tl.serial_stmt_origins) == 1  # only the acc update
        outcome = run_parallel(result, 4)
        assert outcome.output == base.output

    def test_num_privatized_counts_structures(self):
        _, _, _, result = run_both(FIGURE1)
        # the zptr chunk is the only aggregate; b/k are scalars
        assert result.num_privatized == 1
        assert result.expansion.num_scalars >= 2

    def test_table2_stats_recorded(self):
        _, _, _, result = run_both(FIGURE1)
        assert result.redirect_stats.redirected >= 2

    def test_multiple_candidate_loops(self):
        src = """
        int buf[4];
        int outa[4];
        int outb[4];
        int main(void) {
            int i; int k;
            #pragma expand parallel(doall)
            A: for (i = 0; i < 4; i++) {
                for (k = 0; k < 4; k++) buf[k] = i;
                outa[i] = buf[0];
            }
            #pragma expand parallel(doall)
            B: for (i = 0; i < 4; i++) {
                for (k = 0; k < 4; k++) buf[k] = i * 2;
                outb[i] = buf[3];
            }
            print_int(outa[3] + outb[3]);
            return 0;
        }
        """
        program, sema, base, result = run_both(src, labels=("A", "B"))
        assert len(result.loops) == 2
        outcome = run_parallel(result, 4)
        assert outcome.output == base.output and not outcome.races

    def test_original_program_unmodified(self):
        program, sema = parse_and_analyze(FIGURE1)
        before = print_program(program)
        expand_for_threads(program, sema, ["L"])
        assert print_program(program) == before

    def test_unopt_mode_still_correct(self):
        _, _, base, result = run_both(FIGURE1, optimize=False)
        for n in (1, 4):
            outcome = run_parallel(result, n)
            assert outcome.output == base.output and not outcome.races

    def test_unopt_slower_than_opt(self):
        _, _, _, r_opt = run_both(FIGURE1, optimize=True)
        _, _, _, r_unopt = run_both(FIGURE1, optimize=False)
        def seq_cycles(result):
            m = Machine(result.program, result.sema)
            m.nthreads = 1
            m.run()
            return m.cost.cycles
        assert seq_cycles(r_unopt) > seq_cycles(r_opt)


class TestInterprocedural:
    def test_privatization_through_calls(self):
        src = """
        int buf[8];
        int out[5];
        void fill(int seed) {
            int k;
            for (k = 0; k < 8; k++) buf[k] = seed * k;
        }
        int take(void) { return buf[7]; }
        int main(void) {
            int i;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 5; i++) {
                fill(i);
                out[i] = take();
            }
            print_int(out[4]);
            return 0;
        }
        """
        _, _, base, result = run_both(src)
        outcome = run_parallel(result, 4)
        assert outcome.output == base.output and not outcome.races
        names = {
            ev.decl.name for ev in result.expansion.expanded_vars.values()
        }
        assert "buf" in names

    def test_linked_queue_interprocedural(self):
        """dijkstra's shape in miniature: globals + per-iteration
        malloc/free through helper functions."""
        src = """
        struct q { int v; struct q *next; };
        struct q *head;
        int out[6];
        void push(int v) {
            struct q *x = (struct q*)malloc(sizeof(struct q));
            x->v = v;
            x->next = head;
            head = x;
        }
        int pop_sum(void) {
            int s = 0;
            while (head) {
                struct q *t;
                t = head;
                head = head->next;
                s += t->v;
                free(t);
            }
            return s;
        }
        int main(void) {
            int i;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 6; i++) {
                int j;
                head = 0;
                for (j = 0; j <= i; j++) push(j * (i + 1));
                out[i] = pop_sum();
            }
            for (i = 0; i < 6; i++) print_int(out[i]);
            return 0;
        }
        """
        _, _, base, result = run_both(src)
        for n in (2, 4, 8):
            outcome = run_parallel(result, n)
            assert outcome.output == base.output and not outcome.races


class TestStagedPipelineCache:
    """The staged pipeline over the paper's Figure 1: every stage is
    probed from / published to a :class:`repro.service.StageCache`, so
    re-compiling identical inputs does zero transform work."""

    def _job(self, **kwargs):
        from repro.service import Job
        kwargs.setdefault("source", FIGURE1)
        kwargs.setdefault("loop_labels", ("L",))
        return Job(**kwargs)

    def test_cold_compile_then_full_warm_hit(self, tmp_path):
        from repro.service import StageCache, StagedCompiler, run_job
        cache = StageCache(root=str(tmp_path))
        compiler = StagedCompiler(cache=cache)
        cold = compiler.compile(self._job())
        assert all(v == "miss" for v in cold.report.values())
        warm = compiler.compile(self._job())
        assert all(v == "hit" for v in warm.report.values())
        # the cached artifact still runs (and verifies) correctly
        outcome = run_job(warm, cache=cache)
        assert outcome.verified and not outcome.races

    def test_expand_and_run_cache_report(self, tmp_path):
        from repro import expand_and_run
        from repro.service import StageCache
        cache = StageCache(root=str(tmp_path))
        first = expand_and_run(job=self._job(), cache=cache)
        second = expand_and_run(job=self._job(), cache=cache)
        assert first.output == second.output
        assert all(v == "miss" for v in first.cache_report.values())
        assert all(v == "hit" for v in second.cache_report.values())
        # the legacy path reports no cache activity
        third = expand_and_run(FIGURE1, ["L"])
        assert third.cache_report is None

    def test_optflag_change_reuses_analysis_only(self, tmp_path):
        from repro.service import (
            CompileOptions, StageCache, StagedCompiler,
        )
        cache = StageCache(root=str(tmp_path))
        compiler = StagedCompiler(cache=cache)
        compiler.compile(self._job())
        ablated = compiler.compile(self._job(
            options=CompileOptions(opt=(False,) * 5)))
        # parse/sema/profile/classify are opt-independent...
        for stage in ("parse", "sema", "profile", "classify"):
            assert ablated.report[stage] == "hit"
        # ...but the transform stages must recompute
        for stage in ("expand", "optimize", "plan", "lower"):
            assert ablated.report[stage] == "miss"

    def test_corrupt_entry_recovers_with_diagnostic(self, tmp_path):
        import os
        from repro.diagnostics import DiagnosticSink
        from repro.service import (
            StageCache, StagedCompiler, run_job, stage_keys,
        )
        cache = StageCache(root=str(tmp_path))
        StagedCompiler(cache=cache).compile(self._job())
        # the deepest durable stage is the one a fresh process probes
        key = stage_keys(self._job())["plan"]
        path = cache._entry_path("plan", key)
        assert os.path.exists(path)
        with open(path, "wb") as fh:
            fh.write(b"truncated garbage")
        sink = DiagnosticSink()
        fresh = StageCache(root=str(tmp_path), sink=sink)
        compiled = StagedCompiler(cache=fresh, sink=sink).compile(
            self._job())
        assert any(d.code == "CACHE-CORRUPT"
                   for d in sink.diagnostics)
        outcome = run_job(compiled, cache=fresh)
        assert outcome.verified and not outcome.races
