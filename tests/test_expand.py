"""Expansion (Table 1) and named-variable redirection (Table 2) tests,
driven through the full pipeline on focused programs; each test checks
both the emitted code shape and N=1 behavioural equivalence."""

import pytest

from repro.frontend import parse_and_analyze, print_program
from repro.interp import Machine
from repro.runtime import run_parallel
from repro.transform import expand_for_threads


def transform(source, labels=("L",), optimize=True):
    program, sema = parse_and_analyze(source)
    result = expand_for_threads(program, sema, list(labels),
                                optimize=optimize)
    base = Machine(program, sema)
    base.run()
    return result, base, print_program(result.program)


def check_equivalent(result, base, nthreads=1):
    machine = Machine(result.program, result.sema)
    machine.nthreads = nthreads
    machine.run()
    assert machine.output == base.output
    return machine


class TestTable1LocalRows:
    def test_local_scalar_becomes_vla(self):
        src = """
        int out[4];
        int main(void) {
            int i; int t;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 4; i++) {
                t = i * 3;
                out[i] = t + 1;
            }
            print_int(out[3]);
            return 0;
        }
        """
        result, base, text = transform(src)
        assert "int t[__nthreads];" in text
        assert "t[__tid] = " in text
        check_equivalent(result, base)

    def test_local_array_gets_copy_dimension(self):
        src = """
        int out[4];
        int main(void) {
            int i; int k; int buf[8];
            #pragma expand parallel(doall)
            L: for (i = 0; i < 4; i++) {
                for (k = 0; k < 8; k++) buf[k] = i + k;
                out[i] = buf[7];
            }
            print_int(out[0] + out[3]);
            return 0;
        }
        """
        result, base, text = transform(src)
        assert "int buf[__nthreads][8];" in text
        assert "buf[__tid][" in text
        check_equivalent(result, base)

    def test_local_record_expansion(self):
        src = """
        struct acc { int lo; int hi; };
        int out[4];
        int main(void) {
            int i;
            struct acc a;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 4; i++) {
                a.lo = i; a.hi = i * 2;
                out[i] = a.lo + a.hi;
            }
            print_int(out[2]);
            return 0;
        }
        """
        result, base, text = transform(src)
        assert "struct acc a[__nthreads];" in text
        assert "a[__tid].lo" in text
        check_equivalent(result, base)

    def test_param_expansion_seeds_copy_zero(self):
        src = """
        int out[4];
        int work(int scratch) {
            int i;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 4; i++) {
                scratch = i * 5;
                out[i] = scratch;
            }
            return out[3];
        }
        int main(void) { print_int(work(9)); return 0; }
        """
        result, base, text = transform(src)
        assert "scratch__in" in text
        check_equivalent(result, base)


class TestTable1GlobalRows:
    def test_global_scalar_heapified(self):
        src = """
        int t;
        int out[4];
        int main(void) {
            int i;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 4; i++) {
                t = i + 10;
                out[i] = t;
            }
            print_int(out[1]);
            return 0;
        }
        """
        result, base, text = transform(src)
        assert "int* t;" in text
        assert "__expand_init" in text
        assert "t = malloc(sizeof(int) * __nthreads);" in text
        check_equivalent(result, base)

    def test_global_array_heapified_with_init_values(self):
        src = """
        int buf[4] = {5, 6, 7, 8};
        int out[3];
        int main(void) {
            int i; int k;
            print_int(buf[2]);                 // pre-loop: copy 0 init
            #pragma expand parallel(doall)
            L: for (i = 0; i < 3; i++) {
                for (k = 0; k < 4; k++) buf[k] = i * k;
                out[i] = buf[3];
            }
            print_int(out[2]);
            return 0;
        }
        """
        result, base, text = transform(src)
        assert "buf = malloc(sizeof(int[4]) * __nthreads);" in text
        assert "buf[2] = 7;" in text          # initializer materialized
        check_equivalent(result, base)

    def test_global_record_heapified(self):
        src = """
        struct st { int a; double b; };
        struct st s;
        int out[3];
        int main(void) {
            int i;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 3; i++) {
                s.a = i; s.b = i * 0.5;
                out[i] = s.a + (int)s.b;
            }
            print_int(out[2]);
            return 0;
        }
        """
        result, base, text = transform(src)
        assert "struct st* s;" in text
        check_equivalent(result, base)

    def test_heap_allocation_multiplied(self):
        src = """
        int out[4];
        int main(void) {
            int i; int k;
            int *w = (int*)malloc(sizeof(int) * 6);
            #pragma expand parallel(doall)
            L: for (i = 0; i < 4; i++) {
                for (k = 0; k < 6; k++) w[k] = i + k;
                out[i] = w[5];
            }
            print_int(out[3]);
            return 0;
        }
        """
        result, base, text = transform(src)
        assert "* __nthreads)" in text
        check_equivalent(result, base)

    def test_unreferenced_structures_not_expanded(self):
        """§3.4: structures never touched by private accesses stay
        un-expanded."""
        src = """
        int shared_in[4] = {1, 2, 3, 4};
        int out[4];
        int main(void) {
            int i; int t;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 4; i++) {
                t = shared_in[i];
                out[i] = t * 2;
            }
            print_int(out[3]);
            return 0;
        }
        """
        result, base, text = transform(src)
        assert "shared_in[4] = {1, 2, 3, 4};" in text  # untouched
        labels = {
            ev.decl.name for ev in result.expansion.expanded_vars.values()
        }
        assert "shared_in" not in labels and "out" not in labels


class TestRedirectionCopySelection:
    def test_shared_reads_use_copy_zero(self):
        src = """
        int cfg;
        int out[3];
        int main(void) {
            int i; int t;
            cfg = 5;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 3; i++) {
                t = cfg + i;     // cfg: upward-exposed -> shared
                out[i] = t;
            }
            print_int(out[2]);
            return 0;
        }
        """
        result, base, text = transform(src)
        # cfg is never privately accessed -> not expanded at all
        labels = {
            ev.decl.name for ev in result.expansion.expanded_vars.values()
        }
        assert "cfg" not in labels
        check_equivalent(result, base)

    def test_private_and_post_loop_accesses_coexist(self):
        """Accesses to an expanded variable outside the loop address
        copy 0 (the shared copy)."""
        src = """
        int t;
        int out[3];
        int main(void) {
            int i;
            t = 999;
            print_int(t);
            #pragma expand parallel(doall)
            L: for (i = 0; i < 3; i++) {
                t = i;
                out[i] = t * 2;
            }
            print_int(out[2]);
            return 0;
        }
        """
        result, base, text = transform(src)
        assert "t[0] = 999" in text or "(*" in text
        check_equivalent(result, base)


class TestParallelSemantics:
    """The real test of Table 1 + 2: N>1 execution is race-free and
    produces identical output."""

    SRC = """
    struct pair { int a; int b; };
    int scratch[6];
    struct pair acc;
    int out[8];
    int main(void) {
        int i; int k; int t;
        #pragma expand parallel(doall)
        L: for (i = 0; i < 8; i++) {
            for (k = 0; k < 6; k++) scratch[k] = i * k;
            acc.a = scratch[5];
            acc.b = scratch[2];
            t = acc.a - acc.b;
            out[i] = t;
        }
        for (i = 0; i < 8; i++) print_int(out[i]);
        return 0;
    }
    """

    @pytest.mark.parametrize("nthreads", [2, 3, 4, 8])
    def test_race_free_equivalent(self, nthreads):
        program, sema = parse_and_analyze(self.SRC)
        base = Machine(program, sema)
        base.run()
        result = expand_for_threads(program, sema, ["L"])
        outcome = run_parallel(result, nthreads)
        assert outcome.output == base.output
        assert not outcome.races

    def test_unexpanded_program_would_race(self):
        """Sanity: without redirection the same loop *does* conflict —
        the race checker is actually capable of failing."""
        program, sema = parse_and_analyze(self.SRC)
        result = expand_for_threads(program, sema, ["L"])
        # run the ORIGINAL (unexpanded) program under the parallel
        # scheduler by faking a transform result around it
        program2, sema2 = parse_and_analyze(self.SRC)
        import copy
        fake = copy.copy(result)
        from repro.frontend import ast as A
        fake.program = program2
        fake.sema = sema2
        fake.loops = [copy.copy(result.loops[0])]
        fake.loops[0].loop = A.find_loop(program2, "L")
        from repro.runtime import RaceError
        with pytest.raises(RaceError):
            run_parallel(fake, 4)

    def test_memory_grows_with_copies(self):
        program, sema = parse_and_analyze(self.SRC)
        result = expand_for_threads(program, sema, ["L"])
        m2 = run_parallel(result, 2).peak_memory
        m8 = run_parallel(result, 8).peak_memory
        assert m8 > m2
