"""Property tests over the frontend: printer round-trips and sema
stability on generated programs."""

from hypothesis import given, settings, strategies as st

from repro.frontend import parse_and_analyze, print_program
from repro.interp import Machine

NAMES = ("alpha", "beta", "gamma", "delta")
BINOPS = ("+", "-", "*", "|", "&", "^")


@st.composite
def straightline_program(draw):
    """A random straight-line integer program using 4 variables."""
    lines = [f"int {n} = {draw(st.integers(-99, 99))};" for n in NAMES]
    for _ in range(draw(st.integers(1, 8))):
        dst = draw(st.sampled_from(NAMES))
        a = draw(st.sampled_from(NAMES))
        b = draw(st.sampled_from(NAMES))
        op = draw(st.sampled_from(BINOPS))
        c = draw(st.integers(-9, 9))
        lines.append(f"{dst} = ({a} {op} {b}) + ({c});")
    body = "\n        ".join(lines)
    prints = " ".join(f"print_int({n});" for n in NAMES)
    return f"""
    int main(void) {{
        {body}
        {prints}
        return 0;
    }}
    """


class TestFrontendProperties:
    @given(straightline_program())
    @settings(max_examples=40, deadline=None)
    def test_print_parse_behaviour_fixpoint(self, source):
        program, sema = parse_and_analyze(source)
        m1 = Machine(program, sema)
        m1.run()
        printed = print_program(program)
        program2, sema2 = parse_and_analyze(printed)
        m2 = Machine(program2, sema2)
        m2.run()
        assert m1.output == m2.output

    @given(straightline_program())
    @settings(max_examples=20, deadline=None)
    def test_print_idempotent(self, source):
        program, _ = parse_and_analyze(source)
        once = print_program(program)
        program2, _ = parse_and_analyze(once)
        assert print_program(program2) == once

    @given(st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                               whitelist_characters="_ +-*/%<>=!&|^(){};,"),
        max_size=60,
    ))
    @settings(max_examples=60, deadline=None)
    def test_frontend_never_hangs_or_crashes_unexpectedly(self, junk):
        """Arbitrary input must produce a clean parse and/or sema error
        (or parse), never a hang or an internal exception."""
        from repro.frontend import LexError, ParseError, SemaError
        from repro.frontend.ctypes import CTypeError
        try:
            parse_and_analyze(junk)
        except (LexError, ParseError, SemaError, CTypeError):
            pass
