"""Parser unit tests."""

import pytest

from repro.frontend import ast, parse
from repro.frontend.ctypes import ArrayType, IntType, PointerType
from repro.frontend.parser import ParseError


def parse_expr(text):
    program = parse(f"int main(void) {{ x = {text}; return 0; }}")
    stmt = program.function("main").body.stmts[0]
    return stmt.expr.value


def parse_stmts(body):
    program = parse(f"int main(void) {{ {body} }}")
    return program.function("main").body.stmts


class TestDeclarations:
    def test_global_scalar(self):
        decl = next(parse("int a;").globals())
        assert decl.name == "a" and decl.ctype == IntType("int")

    def test_global_with_init(self):
        decl = next(parse("int a = 5;").globals())
        assert isinstance(decl.init, ast.IntLit) and decl.init.value == 5

    def test_pointer_declarator(self):
        decl = next(parse("int **pp;").globals())
        assert decl.ctype == PointerType(PointerType(IntType("int")))

    def test_array_declarator(self):
        decl = next(parse("int a[3][4];").globals())
        assert decl.ctype == ArrayType(ArrayType(IntType("int"), 4), 3)

    def test_multi_declarator_line(self):
        decls = list(parse("int a, *b, c[2];").globals())
        assert [d.name for d in decls] == ["a", "b", "c"]
        assert decls[1].ctype.is_pointer and decls[2].ctype.is_array

    def test_unsigned_types(self):
        decl = next(parse("unsigned char a;").globals())
        assert decl.ctype == IntType("char", signed=False)

    def test_bare_unsigned_is_unsigned_int(self):
        decl = next(parse("unsigned a;").globals())
        assert decl.ctype == IntType("int", signed=False)

    def test_struct_definition(self):
        program = parse("struct s { int a; double b; };")
        sdecl = program.decls[0]
        assert isinstance(sdecl, ast.StructDecl)
        assert sdecl.struct_type.field("b").offset == 8

    def test_recursive_struct(self):
        program = parse("struct n { int v; struct n *next; };")
        stype = program.decls[0].struct_type
        assert stype.field("next").type.pointee is stype

    def test_brace_initializer(self):
        decl = next(parse("int a[3] = {1, 2, 3};").globals())
        assert [i.value for i in decl.init] == [1, 2, 3]

    def test_nested_brace_initializer(self):
        decl = next(parse("int a[2][2] = {{1, 2}, {3, 4}};").globals())
        assert decl.init[1][0].value == 3

    def test_function_prototype(self):
        program = parse("int f(int a, double b);")
        fn = program.decls[0]
        assert fn.body is None and len(fn.params) == 2

    def test_array_param_decays(self):
        program = parse("void f(int a[10]) { }")
        assert program.decls[0].params[0].ctype.is_pointer

    def test_void_param_list(self):
        assert parse("int f(void) { return 0; }").decls[0].params == []


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_precedence_shift_below_add(self):
        e = parse_expr("1 << 2 + 3")
        assert e.op == "<<" and e.right.op == "+"

    def test_parentheses_override(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_logical_lowest(self):
        e = parse_expr("a == 1 && b < 2")
        assert e.op == "&&"

    def test_assignment_right_associative(self):
        stmts = parse_stmts("a = b = 1;")
        inner = stmts[0].expr.value
        assert isinstance(inner, ast.Assign)

    def test_ternary(self):
        e = parse_expr("a ? b : c")
        assert isinstance(e, ast.Cond)

    def test_nested_ternary_right_assoc(self):
        e = parse_expr("a ? b : c ? d : e")
        assert isinstance(e.els, ast.Cond)

    def test_unary_chain(self):
        e = parse_expr("-*&a")
        assert e.op == "-" and e.operand.op == "*" and \
            e.operand.operand.op == "&"

    def test_postfix_chain(self):
        e = parse_expr("a.b[1]->c")
        assert isinstance(e, ast.Member) and e.arrow
        assert isinstance(e.base, ast.Index)

    def test_postincrement(self):
        e = parse_expr("a++")
        assert e.op == "p++"

    def test_cast(self):
        e = parse_expr("(struct s*)p")
        assert isinstance(e, ast.Cast) and e.to_type.is_pointer

    def test_cast_binds_tighter_than_mul(self):
        e = parse_expr("(int)a * b")
        assert e.op == "*" and isinstance(e.left, ast.Cast)

    def test_sizeof_type(self):
        e = parse_expr("sizeof(int)")
        assert isinstance(e, ast.SizeofType)

    def test_sizeof_expr(self):
        e = parse_expr("sizeof(*p)")
        assert isinstance(e, ast.SizeofExpr)

    def test_sizeof_pointer_type(self):
        e = parse_expr("sizeof(struct s*)")
        assert isinstance(e, ast.SizeofType) and e.of_type.is_pointer

    def test_call_with_args(self):
        e = parse_expr("f(1, a + 2)")
        assert isinstance(e, ast.Call) and len(e.args) == 2

    def test_comma_in_parens(self):
        e = parse_expr("(a, b)")
        assert isinstance(e, ast.Comma)

    def test_comma_not_splitting_call_args(self):
        e = parse_expr("f(a, b)")
        assert len(e.args) == 2


class TestStatements:
    def test_if_else(self):
        (stmt,) = parse_stmts("if (a) b = 1; else b = 2;")
        assert isinstance(stmt, ast.If) and stmt.els is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = parse_stmts("if (a) if (b) c = 1; else c = 2;")
        assert stmt.els is None and stmt.then.els is not None

    def test_while(self):
        (stmt,) = parse_stmts("while (a) a = a - 1;")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        (stmt,) = parse_stmts("do a = 1; while (a < 3);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for_full(self):
        (stmt,) = parse_stmts("for (i = 0; i < 3; i++) x = i;")
        assert isinstance(stmt, ast.For) and stmt.init is not None

    def test_for_with_decl(self):
        (stmt,) = parse_stmts("for (int i = 0; i < 3; i++) x = i;")
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_empty_clauses(self):
        (stmt,) = parse_stmts("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue(self):
        stmts = parse_stmts("while (1) { break; } while (1) { continue; }")
        assert isinstance(stmts[0].body.stmts[0], ast.Break)
        assert isinstance(stmts[1].body.stmts[0], ast.Continue)

    def test_empty_statement(self):
        (stmt,) = parse_stmts(";")
        assert isinstance(stmt, ast.Block) and not stmt.stmts

    def test_loop_label(self):
        (stmt,) = parse_stmts("L1: while (1) break;")
        assert stmt.label == "L1"

    def test_loop_pragma(self):
        stmts = parse_stmts(
            "#pragma expand parallel(doacross)\nL: while (1) break;"
        )
        assert stmts[0].pragmas == ["expand parallel(doacross)"]

    def test_label_on_non_loop_rejected(self):
        with pytest.raises(ParseError):
            parse_stmts("L: x = 1;")

    def test_find_loop_by_label(self):
        program = parse(
            "int main(void) { int i; A: for (i=0;i<2;i++) { } return 0; }"
        )
        assert ast.find_loop(program, "A").label == "A"
        with pytest.raises(KeyError):
            ast.find_loop(program, "missing")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "int main(void) { return 0 }",       # missing semicolon
        "int main(void) { if a) x = 1; }",   # missing paren
        "int = 3;",                          # missing name
        "int main(void) { x = ; }",          # missing expression
        "struct { int a; } x;",              # anonymous struct unsupported
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestNodeInfrastructure:
    def test_unique_node_ids(self):
        program = parse("int main(void) { int a = 1 + 2; return a; }")
        nids = [n.nid for n in program.walk()]
        assert len(nids) == len(set(nids))

    def test_walk_covers_children(self):
        program = parse("int main(void) { if (1) { x = 2; } return 0; }")
        kinds = {type(n).__name__ for n in program.walk()}
        assert {"Program", "FunctionDef", "Block", "If", "Assign"} <= kinds
