"""Fat-pointer promotion tests: Figures 5-6 type/reference rules and
Table 3 span computation, checked row by row."""

import pytest

from repro.frontend import ast, parse_and_analyze, print_program
from repro.frontend.ctypes import INT, LONG, PointerType, StructType
from repro.frontend.sema import analyze
from repro.interp import Machine
from repro.transform.promote import (
    PTR_FIELD, PromotionPlan, SPAN_FIELD, TransformError, TypePromoter,
    promote_program,
)
from repro.transform.rewrite import clone_program


def promote_all(source, keep_trivial=False):
    """Promote every pointer in the program; run sema; return pieces."""
    program, sema = parse_and_analyze(source)
    clone, _ = clone_program(program)
    plan = PromotionPlan(promote_all=True)
    promoter = promote_program(clone, sema, plan,
                               keep_trivial_spans=keep_trivial)
    new_sema = analyze(clone)
    return clone, new_sema, promoter


def run_promoted(source, keep_trivial=False):
    clone, sema, _ = promote_all(source, keep_trivial)
    machine = Machine(clone, sema)
    machine.run()
    return machine


def spans_in(source, fn="main", keep_trivial=False):
    """Texts of all `.span = ...` assignments in a function."""
    clone, _, _ = promote_all(source, keep_trivial)
    from repro.frontend.printer import print_expr
    out = []
    for node in clone.function(fn).body.walk():
        if isinstance(node, ast.Assign) and \
                isinstance(node.target, ast.Member) and \
                node.target.name == SPAN_FIELD:
            out.append(print_expr(node))
    return out


class TestTypePromotion:
    def test_promote_int_is_identity(self):
        promoter = TypePromoter(PromotionPlan(promote_all=True))
        assert promoter.promote(INT) is INT

    def test_promote_pointer_is_fat_struct(self):
        promoter = TypePromoter(PromotionPlan(promote_all=True))
        fat = promoter.promote(PointerType(INT))
        assert isinstance(fat, StructType)
        assert fat.field(PTR_FIELD).type == PointerType(INT)
        assert fat.field(SPAN_FIELD).type == LONG
        assert fat.size == 16

    def test_promotion_memoized(self):
        promoter = TypePromoter(PromotionPlan(promote_all=True))
        assert promoter.promote(PointerType(INT)) is \
            promoter.promote(PointerType(INT))

    def test_recursive_struct_promotion(self):
        node = StructType("node")
        node.define([("v", INT), ("next", PointerType(node))])
        promoter = TypePromoter(PromotionPlan(promote_all=True))
        promoted = promoter.promote(node)
        fat = promoted.field("next").type
        assert promoter.is_fat(fat)
        # the fat struct's pointer field points at the *promoted* node
        assert fat.field(PTR_FIELD).type.pointee is promoted

    def test_unaffected_struct_reused(self):
        plain = StructType("plain", [("a", INT), ("b", INT)])
        promoter = TypePromoter(PromotionPlan(promote_all=False))
        assert promoter.promote(plain) is plain

    def test_selective_plan_by_group(self):
        plan = PromotionPlan()
        plan.mark_promoted(INT)
        assert plan.should_promote(INT)
        # all primitives promote together (recast safety)
        from repro.frontend.ctypes import SHORT, DOUBLE
        assert plan.should_promote(SHORT) and plan.should_promote(DOUBLE)
        node = StructType("n2", [("v", INT)])
        assert not plan.should_promote(node)


class TestSpanRules:
    """Table 3, one test per row."""

    def test_malloc_span(self):
        spans = spans_in(
            "int main(void) { int *p; p = (int*)malloc(24);"
            " free(p); return 0; }"
        )
        assert any("24" in s for s in spans)

    def test_calloc_span_is_product(self):
        spans = spans_in(
            "int main(void) { int *p; p = (int*)calloc(3, 8);"
            " free(p); return 0; }"
        )
        assert any("3 * 8" in s for s in spans)

    def test_address_taken_1(self):
        spans = spans_in(
            "int main(void) { int a[6]; int *p; p = &a[0]; return *p; }"
        )
        assert any("sizeof(int[6])" in s for s in spans)

    def test_address_taken_2_whole_struct(self):
        """&s.a records sizeof(s), the whole structure."""
        spans = spans_in("""
        struct s { int a; int b; int c; };
        int main(void) { struct s x; int *p; p = &x.b; return *p; }
        """)
        assert any("sizeof(struct s)" in s for s in spans)

    def test_pointer_assignment_via_struct_copy(self):
        """p = q moves pointer and span together (whole fat copy)."""
        clone, sema, _ = promote_all(
            "int main(void) { int *p; int *q; q = (int*)malloc(8);"
            " p = q; free(p.__x); return 0; }".replace(".__x", "")
        )
        text = print_program(clone)
        assert "p = q;" in text  # single struct assignment, no split

    def test_pointer_arith_span_from_base(self):
        spans = spans_in(
            "int main(void) { int *q; int *p; q = (int*)malloc(16);"
            " p = q + 2; free(q); return *p; }"
        )
        assert any("q.span" in s for s in spans)

    def test_null_span_zero(self):
        spans = spans_in("int main(void) { int *p; p = 0; return 0; }")
        assert any(s.endswith("= 0") for s in spans)

    def test_trivial_self_span_kept_when_unoptimized(self):
        src = ("int main(void) { int *p; p = (int*)malloc(8);"
               " p += 1; free(p - 1); return 0; }")
        spans_noopt = spans_in(src, keep_trivial=True)
        spans_opt = spans_in(src, keep_trivial=False)
        assert any("p.span = p.span" in s for s in spans_noopt)
        assert not any("p.span = p.span" in s for s in spans_opt)

    def test_array_decay_span(self):
        spans = spans_in(
            "int main(void) { int a[5]; int *p; p = a; return *p; }"
        )
        assert any("sizeof(int[5])" in s for s in spans)


class TestReferenceAdjustment:
    """Figure 5's Ref/Deref rules, validated by running the promoted
    program: behaviour must be identical to the original."""

    CASES = [
        # deref
        "int x = 7; int *p; p = &x; print_int(*p);",
        # index through pointer
        "int a[3]; int *p; p = a; a[2] = 9; print_int(p[2]);",
        # pointer in condition
        "int *p; p = 0; if (!p) { print_int(1); } else { print_int(2); }",
        # pointer comparison
        "int a[2]; int *p; int *q; p = a; q = a + 1;"
        " print_int(p == q ? 1 : 0); print_int(p < q ? 1 : 0);",
        # pointer increments
        "int a[3]; int *p; p = a; a[1] = 4; p++; print_int(*p);",
        # arrow through promoted field
        "",
    ]

    @pytest.mark.parametrize("body", [c for c in CASES if c])
    def test_behaviour_preserved(self, body):
        source = f"int main(void) {{ {body} return 0; }}"
        program, sema = parse_and_analyze(source)
        base = Machine(program, sema)
        base.run()
        promoted = run_promoted(source)
        assert promoted.output == base.output

    def test_linked_list_promoted(self):
        source = """
        struct n { int v; struct n *next; };
        int main(void) {
            struct n *head = 0;
            int i;
            for (i = 0; i < 4; i++) {
                struct n *x = (struct n*)malloc(sizeof(struct n));
                x->v = i; x->next = head; head = x;
            }
            int s = 0;
            struct n *w;
            w = head;
            while (w) { s = s * 10 + w->v; w = w->next; }
            print_int(s);
            return 0;
        }
        """
        assert run_promoted(source).output == ["3210"]

    def test_function_params_carry_span(self):
        source = """
        int total(int *p, int n) {
            int s = 0; int i;
            for (i = 0; i < n; i++) s += p[i];
            return s;
        }
        int main(void) {
            int *buf; int i;
            buf = (int*)malloc(4 * sizeof(int));
            for (i = 0; i < 4; i++) buf[i] = i + 1;
            print_int(total(buf, 4));
            free(buf);
            return 0;
        }
        """
        assert run_promoted(source).output == ["10"]

    def test_returned_pointer_is_fat(self):
        source = """
        int *make(int n) {
            int *p;
            p = (int*)malloc(n * sizeof(int));
            return p;
        }
        int main(void) {
            int *q;
            q = make(3);
            q[2] = 5;
            print_int(q[2]);
            free(q);
            return 0;
        }
        """
        assert run_promoted(source).output == ["5"]

    def test_recast_short_int_promoted(self):
        source = """
        int main(void) {
            int *zp; short *sp;
            zp = (int*)malloc(8);
            sp = (short*)zp;
            sp[0] = 3; sp[1] = 1;
            print_int(zp[0]);
            free(zp);
            return 0;
        }
        """
        assert run_promoted(source).output == [str(3 + (1 << 16))]

    def test_builtin_args_projected(self):
        source = """
        int main(void) {
            char *b;
            b = (char*)malloc(8);
            memset(b, 65, 3);
            b[3] = 0;
            print_str(b);
            free(b);
            return 0;
        }
        """
        assert run_promoted(source).output == ["AAA"]


class TestRestrictions:
    def test_address_of_promoted_pointer_rejected(self):
        with pytest.raises(TransformError, match="address of a promoted"):
            promote_all(
                "int main(void) { int *p; int **pp; p = 0; pp = &p;"
                " return 0; }"
            )

    def test_null_literal_to_promoted_param_rejected(self):
        with pytest.raises(TransformError):
            promote_all("""
            int f(int *p) { return p == 0; }
            int main(void) { return f(0); }
            """)

    def test_global_fat_pointer_zero_init_dropped(self):
        clone, sema, _ = promote_all(
            "int *g = 0; int main(void) { return g == 0 ? 0 : 1; }"
        )
        gdecl = next(d for d in clone.globals() if d.name == "g")
        assert gdecl.init is None
        machine = Machine(clone, sema)
        assert machine.run() == 0
