"""Multi-core process backend: bit-identity differentials against the
simulated backend, capability-audit verdicts, worker-crash recovery,
and the shared-memory snapshot machinery.

Every test here runs real worker processes over one
``multiprocessing.shared_memory`` segment, so the whole module skips on
hosts without ``fork`` or a usable ``/dev/shm``.
"""

import time

import pytest

from repro.bench import all_benchmarks, get
from repro.diagnostics import DiagnosticSink
from repro.frontend import ast, parse_and_analyze
from repro.interp import Machine
from repro.obs import Tracer
from repro.runtime import (
    ParallelRunner, WorkerCrash, audit_loop, process_backend_available,
    run_parallel,
)
from repro.transform import expand_for_threads

_OK, _WHY = process_backend_available()
pytestmark = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_WHY}")

KERNELS = [spec.name for spec in all_benchmarks()]

#: small fast-dispatch process options so tests do not burn 8 MiB
#: segments per run
SMALL_MC = {"segment_bytes": 1 << 21, "arena_bytes": 1 << 18}


def _fingerprint(runner, outcome):
    """Everything the bit-identity contract covers: output, modeled
    cost, per-loop makespans, non-MC diagnostics, final live heap
    image.  (peak_memory is excluded by contract: worker stack
    allocations live in private arenas.)"""
    memory = runner.machine.memory
    heap = []
    for rec in memory._allocs:
        if rec.live and rec.kind in ("global", "heap"):
            heap.append((rec.kind, rec.label, rec.addr, rec.size,
                         bytes(memory.data[rec.addr:rec.end])))
    cost = runner.machine.cost
    return {
        "exit": outcome.exit_code,
        "output": list(outcome.output),
        "cycles": cost.cycles,
        "instructions": cost.instructions,
        "loads": cost.loads,
        "stores": cost.stores,
        "loops": {label: (ex.makespan, ex.iterations)
                  for label, ex in outcome.loops.items()},
        "diagnostics": [d.render() for d in outcome.diagnostics
                        if not d.code.startswith("MC-")],
        "heap": heap,
    }


def _run_both(tresult, nthreads, mc=None, engine="bytecode"):
    fps = {}
    for backend in ("simulated", "process"):
        runner = ParallelRunner(tresult, nthreads, engine=engine,
                                backend=backend, workers=nthreads,
                                mc=mc)
        outcome = runner.run()
        fps[backend] = _fingerprint(runner, outcome)
    return fps


# ---------------------------------------------------------------------------
# kernel differential: 8 kernels x both layouts, bit for bit
# ---------------------------------------------------------------------------

class TestKernelDifferential:
    @pytest.mark.parametrize("layout", ["bonded", "interleaved"])
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_bit_identical(self, kernel, layout):
        spec = get(kernel)
        program, sema = parse_and_analyze(spec.source)
        # permissive expansion: the interleaved layout refuses
        # heap-expanding loops (dijkstra, hmmer) — those quarantine and
        # the differential still has to hold on whatever remains
        tresult = expand_for_threads(program, sema, spec.loop_labels,
                                     optimize=True, layout=layout,
                                     strict=False,
                                     sink=DiagnosticSink())
        fps = _run_both(tresult, 2)
        assert fps["process"] == fps["simulated"]


# ---------------------------------------------------------------------------
# process-path execution (no fallback) for both loop kinds
# ---------------------------------------------------------------------------

DOALL_SRC = """
int out[64];
int main(void) {
    int i;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 64; i++) {
        out[i] = i * i + 3;
    }
    int s = 0;
    for (i = 0; i < 64; i++) s = s + out[i];
    print_int(s);
    return 0;
}
"""

DOACROSS_SRC = """
int buf[16];
int acc;
int main(void) {
    int i; int k;
    #pragma expand parallel(doacross)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        acc = acc * 7 + buf[15];
    }
    print_int(acc);
    return 0;
}
"""


def _prepare(source, **kw):
    program, sema = parse_and_analyze(source)
    base = Machine(program, sema, engine="bytecode")
    base.run()
    tresult = expand_for_threads(program, sema, ["L"], optimize=True,
                                 **kw)
    return base, tresult


class TestProcessPath:
    def test_doall_runs_on_workers(self):
        base, tresult = _prepare(DOALL_SRC)
        tracer = Tracer()
        sink = DiagnosticSink()
        outcome = run_parallel(tresult, 4, engine="bytecode",
                               backend="process", workers=4,
                               mc=SMALL_MC, tracer=tracer, sink=sink)
        assert outcome.output == base.output
        assert outcome.backend == "process"
        # the loop genuinely ran on workers: no MC fallback note, and
        # worker wall-clock spans landed in the tracer
        assert not [d for d in outcome.diagnostics
                    if d.code == "MC-FALLBACK"]
        assert tracer.metrics.get("runtime.worker_tasks") >= 4
        assert tracer.worker_events
        assert {w.worker for w in tracer.worker_events} <= {0, 1, 2, 3}

    def test_doall_cycles_match_simulated(self):
        _, tresult = _prepare(DOALL_SRC)
        fps = _run_both(tresult, 4, mc=SMALL_MC)
        assert fps["process"] == fps["simulated"]

    def test_doacross_runs_on_workers(self):
        base, tresult = _prepare(DOACROSS_SRC)
        tracer = Tracer()
        outcome = run_parallel(tresult, 4, engine="bytecode",
                               backend="process", workers=4,
                               mc=SMALL_MC, tracer=tracer)
        assert outcome.output == base.output
        assert not [d for d in outcome.diagnostics
                    if d.code == "MC-FALLBACK"]
        assert tracer.metrics.get("runtime.worker_tasks") >= 1

    def test_doacross_pipeline_parity(self):
        """The cross-process token protocol must reproduce the
        simulated pipelining recurrence exactly: same makespan, same
        per-thread wait cycles, same sync ledger."""
        _, tresult = _prepare(DOACROSS_SRC)
        outs = {}
        for backend in ("simulated", "process"):
            runner = ParallelRunner(tresult, 4, engine="bytecode",
                                    backend=backend, workers=4,
                                    mc=SMALL_MC)
            outs[backend] = runner.run()
        sim = outs["simulated"].loops["L"]
        proc = outs["process"].loops["L"]
        assert proc.makespan == sim.makespan
        assert proc.iterations == sim.iterations
        sim_threads = [(t.tid, t.busy_cycles, t.wait_cycles,
                        t.sync_cycles) for t in sim.threads]
        proc_threads = [(t.tid, t.busy_cycles, t.wait_cycles,
                         t.sync_cycles) for t in proc.threads]
        assert proc_threads == sim_threads

    def test_thread_count_above_pool(self):
        """nthreads larger than the worker pool round-robins DOALL
        chunks over the available lanes, still bit-identical."""
        _, tresult = _prepare(DOALL_SRC)
        fps = {}
        for backend in ("simulated", "process"):
            runner = ParallelRunner(tresult, 8, engine="bytecode",
                                    backend=backend, workers=2,
                                    mc=SMALL_MC)
            outcome = runner.run()
            fps[backend] = _fingerprint(runner, outcome)
        assert fps["process"] == fps["simulated"]


# ---------------------------------------------------------------------------
# capability audit
# ---------------------------------------------------------------------------

def _loop_of(source):
    program, sema = parse_and_analyze(source)
    return ast.find_loop(program, "L"), sema


class TestAudit:
    def test_clean_doall_is_capable(self):
        loop, sema = _loop_of(DOALL_SRC)
        audit = audit_loop(loop, sema, kind_doall=True, nthreads=4,
                           workers=4, chunk=1, controlled_nids={loop.nid})
        assert audit.ok

    def test_malloc_in_body_rejected(self):
        loop, sema = _loop_of("""
int main(void) {
    int i;
    L: for (i = 0; i < 8; i++) {
        int* p = malloc(16);
        free(p);
    }
    return 0;
}
""")
        audit = audit_loop(loop, sema, kind_doall=True, nthreads=4,
                           workers=4, chunk=1, controlled_nids={loop.nid})
        assert "MC-ALLOC" in audit.reasons

    def test_malloc_in_callee_rejected(self):
        loop, sema = _loop_of("""
int helper(void) {
    int* p = malloc(16);
    free(p);
    return 1;
}
int main(void) {
    int i; int s = 0;
    L: for (i = 0; i < 8; i++) {
        s = s + helper();
    }
    print_int(s);
    return 0;
}
""")
        audit = audit_loop(loop, sema, kind_doall=True, nthreads=4,
                           workers=4, chunk=1, controlled_nids={loop.nid})
        assert "MC-ALLOC" in audit.reasons

    def test_noncanonical_while_rejected(self):
        loop, sema = _loop_of("""
int main(void) {
    int i = 0;
    L: while (i < 8) {
        i = i + 1;
    }
    print_int(i);
    return 0;
}
""")
        audit = audit_loop(loop, sema, kind_doall=True, nthreads=4,
                           workers=4, chunk=1, controlled_nids={loop.nid})
        assert "MC-NONCANONICAL" in audit.reasons

    def test_control_written_in_body_rejected(self):
        loop, sema = _loop_of("""
int main(void) {
    int i;
    L: for (i = 0; i < 8; i++) {
        if (i == 5) i = 7;
    }
    print_int(i);
    return 0;
}
""")
        audit = audit_loop(loop, sema, kind_doall=True, nthreads=4,
                           workers=4, chunk=1, controlled_nids={loop.nid})
        assert "MC-CONTROL" in audit.reasons

    def test_return_in_body_rejected(self):
        loop, sema = _loop_of("""
int main(void) {
    int i;
    L: for (i = 0; i < 8; i++) {
        if (i == 5) return 1;
    }
    return 0;
}
""")
        audit = audit_loop(loop, sema, kind_doall=True, nthreads=4,
                           workers=4, chunk=1, controlled_nids={loop.nid})
        assert "MC-RETURN" in audit.reasons

    def test_doacross_break_rejected(self):
        loop, sema = _loop_of("""
int acc;
int main(void) {
    int i;
    L: for (i = 0; i < 8; i++) {
        acc = acc + i;
        if (acc > 10) break;
    }
    print_int(acc);
    return 0;
}
""")
        audit = audit_loop(loop, sema, kind_doall=False, nthreads=4,
                           workers=4, chunk=1, controlled_nids={loop.nid})
        assert "MC-BREAK" in audit.reasons
        # ...but the same break is fine for DOALL (workers report it as
        # a structured error; DOALL chunks never include one in the
        # suite, the audit only polices DOACROSS strip planning)
        doall = audit_loop(loop, sema, kind_doall=True, nthreads=4,
                           workers=4, chunk=1, controlled_nids={loop.nid})
        assert "MC-BREAK" not in doall.reasons

    def test_doacross_needs_full_pool_and_unit_chunk(self):
        loop, sema = _loop_of(DOACROSS_SRC)
        short = audit_loop(loop, sema, kind_doall=False, nthreads=4,
                           workers=2, chunk=1,
                           controlled_nids={loop.nid})
        assert "MC-WORKERS" in short.reasons
        chunked = audit_loop(loop, sema, kind_doall=False, nthreads=4,
                             workers=4, chunk=2,
                             controlled_nids={loop.nid})
        assert "MC-CHUNK" in chunked.reasons
        clean = audit_loop(loop, sema, kind_doall=False, nthreads=4,
                           workers=4, chunk=1,
                           controlled_nids={loop.nid})
        assert clean.ok

    def test_nested_controlled_loop_rejected(self):
        program, sema = parse_and_analyze("""
int out[8];
int main(void) {
    int i; int k;
    L: for (i = 0; i < 8; i++) {
        M: for (k = 0; k < 4; k++) {
            out[i] = out[i] + k;
        }
    }
    print_int(out[7]);
    return 0;
}
""")
        outer = ast.find_loop(program, "L")
        inner = ast.find_loop(program, "M")
        audit = audit_loop(outer, sema, kind_doall=True, nthreads=4,
                           workers=4, chunk=1,
                           controlled_nids={outer.nid, inner.nid})
        assert "MC-NESTED" in audit.reasons
        # an uncontrolled inner loop is fine
        alone = audit_loop(outer, sema, kind_doall=True, nthreads=4,
                           workers=4, chunk=1,
                           controlled_nids={outer.nid})
        assert alone.ok

    def test_kernel_expectations(self):
        """The suite-wide audit landscape: the allocating kernels and
        the while(1) kernel fall back, the rest run on workers."""
        expect_fallback = {"dijkstra", "456.hmmer", "256.bzip2"}
        for spec in all_benchmarks():
            program, sema = parse_and_analyze(spec.source)
            controlled = set()
            for label in spec.loop_labels:
                controlled.add(ast.find_loop(program, label).nid)
            verdicts = {}
            for label in spec.loop_labels:
                loop = ast.find_loop(program, label)
                audit = audit_loop(loop, sema, kind_doall=True,
                                   nthreads=2, workers=2, chunk=1,
                                   controlled_nids=controlled)
                verdicts[label] = audit.ok
            if spec.name in expect_fallback:
                assert not all(verdicts.values()), \
                    f"{spec.name}: expected at least one fallback loop"
            else:
                assert all(verdicts.values()), \
                    f"{spec.name}: unexpected fallback {verdicts}"


# ---------------------------------------------------------------------------
# worker crash: quarantine fallback, bounded join, structured diagnostic
# ---------------------------------------------------------------------------

class TestWorkerCrash:
    def test_permissive_recovers_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_MC_CRASH", "1")
        base, tresult = _prepare(DOALL_SRC)
        sink = DiagnosticSink()
        start = time.perf_counter()
        outcome = run_parallel(tresult, 4, engine="bytecode",
                               backend="process", workers=4,
                               mc=SMALL_MC, strict=False, sink=sink)
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0, "crash recovery must not hang"
        assert outcome.output == base.output
        assert outcome.recoveries
        assert outcome.recoveries[0].diagnostic.code == "RT-WORKER-CRASH"
        assert sink.by_code("RT-WORKER-CRASH")
        assert sink.by_code("RT-RECOVERED")

    def test_strict_raises_structured_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_MC_CRASH", "0")
        _, tresult = _prepare(DOALL_SRC)
        with pytest.raises(WorkerCrash) as info:
            run_parallel(tresult, 4, engine="bytecode",
                         backend="process", workers=4, mc=SMALL_MC,
                         strict=True)
        assert info.value.diagnostic.code == "RT-WORKER-CRASH"

    def test_session_degrades_after_crash(self, monkeypatch):
        """After a crash the session is degraded: later parallel loops
        route to the simulated controllers instead of a dead pool."""
        monkeypatch.setenv("REPRO_MC_CRASH", "2")
        source = """
int a[32]; int b[32];
int main(void) {
    int i;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 32; i++) { a[i] = i * 2; }
    #pragma expand parallel(doall)
    M: for (i = 0; i < 32; i++) { b[i] = a[i] + 1; }
    int s = 0;
    for (i = 0; i < 32; i++) s = s + b[i];
    print_int(s);
    return 0;
}
"""
        program, sema = parse_and_analyze(source)
        baseline = Machine(program, sema, engine="bytecode")
        baseline.run()
        tresult = expand_for_threads(program, sema, ["L", "M"],
                                     optimize=True)
        tracer = Tracer()
        outcome = run_parallel(tresult, 4, engine="bytecode",
                               backend="process", workers=4,
                               mc=SMALL_MC, strict=False, tracer=tracer)
        assert outcome.output == baseline.output
        assert outcome.recoveries  # the crashed loop recovered
        assert tracer.metrics.get("runtime.mc_degraded") == 1


# ---------------------------------------------------------------------------
# shared-memory snapshot/restore
# ---------------------------------------------------------------------------

class TestSharedSnapshot:
    def test_restore_preserves_view_identity(self):
        from repro.interp.memory import Memory
        from repro.runtime import MachineSnapshot

        backing = bytearray(1 << 16)
        memory = Memory(check_bounds=False, buffer=backing,
                        limit=1 << 16)
        program, sema = parse_and_analyze("int main(void){return 0;}")
        machine = Machine(program, sema, engine="bytecode",
                          memory=memory)
        addr = memory.alloc(64, kind="heap", label="blk")
        memory.write_bytes(addr, b"A" * 64)
        view_before = memory.data
        snap = MachineSnapshot(machine)
        addr2 = memory.alloc(32, kind="heap", label="later")
        memory.write_bytes(addr, b"B" * 64)
        memory.write_bytes(addr2, b"C" * 32)
        snap.restore(machine)
        # the shared view object is never replaced (other processes map
        # the same buffer) and the image is rewound exactly
        assert memory.data is view_before
        assert memory.read_bytes(addr, 64) == b"A" * 64
        assert len(memory._allocs) == 1
        # the rolled-back allocation's bytes are zero again
        assert bytes(backing[addr2:addr2 + 32]) == bytes(32)

    def test_snapshot_captures_only_dirty_span(self):
        from repro.interp.memory import Memory
        from repro.runtime import MachineSnapshot

        backing = bytearray(1 << 20)
        memory = Memory(check_bounds=False, buffer=backing,
                        limit=1 << 20)
        program, sema = parse_and_analyze("int main(void){return 0;}")
        machine = Machine(program, sema, engine="bytecode",
                          memory=memory)
        memory.alloc(128, kind="heap")
        snap = MachineSnapshot(machine)
        # brk-bounded, not the whole 1 MiB segment
        assert len(snap.data) == memory.brk
        assert len(snap.data) < len(backing)


# ---------------------------------------------------------------------------
# session robustness
# ---------------------------------------------------------------------------

class TestSessionLifecycle:
    def test_segment_unlinked_after_run(self):
        _, tresult = _prepare(DOALL_SRC)
        runner = ParallelRunner(tresult, 2, engine="bytecode",
                                backend="process", workers=2,
                                mc=SMALL_MC)
        session = runner.session
        assert session is not None
        name = session.shm.name
        runner.run()
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_memory_inspectable_after_close(self):
        """detach() keeps the final address space readable after the
        segment is gone (reports, fingerprints)."""
        _, tresult = _prepare(DOALL_SRC)
        runner = ParallelRunner(tresult, 2, engine="bytecode",
                                backend="process", workers=2,
                                mc=SMALL_MC)
        runner.run()
        memory = runner.machine.memory
        assert not memory.shared
        assert isinstance(memory.data, bytearray)
        assert any(r.live for r in memory._allocs)

    def test_unavailable_backend_falls_back(self, monkeypatch):
        """When the host probe fails, backend='process' degrades to the
        simulated backend with an MC-UNAVAILABLE warning instead of
        erroring."""
        import repro.runtime.multicore as mc

        # the probe caches its verdict module-side; forcing the cache
        # is exactly how an unavailable host presents
        monkeypatch.setattr(
            mc, "_AVAILABLE", (False, "test-forced"), raising=False)
        base, tresult = _prepare(DOALL_SRC)
        sink = DiagnosticSink()
        outcome = run_parallel(tresult, 2, engine="bytecode",
                               backend="process", sink=sink)
        assert outcome.backend == "simulated"
        assert outcome.output == base.output
        assert sink.by_code("MC-UNAVAILABLE")

    def test_bad_backend_name_rejected(self):
        from repro.runtime import ParallelError

        _, tresult = _prepare(DOALL_SRC)
        with pytest.raises(ParallelError) as info:
            ParallelRunner(tresult, 2, backend="gpu")
        assert info.value.diagnostic.code == "RT-BACKEND"


# ---------------------------------------------------------------------------
# supervision: heartbeats, respawn, chunk retry, lease recovery
# ---------------------------------------------------------------------------

def _run_process(tresult, nthreads, injectors=None, mc=None,
                 strict=True, workers=None):
    opts = dict(SMALL_MC)
    opts.update(mc or {})
    tracer = Tracer()
    sink = DiagnosticSink()
    runner = ParallelRunner(tresult, nthreads, engine="bytecode",
                            backend="process", workers=workers or nthreads,
                            mc=opts, tracer=tracer, sink=sink,
                            strict=strict, fault_injectors=injectors)
    outcome = runner.run()
    return runner, outcome, tracer, sink


class TestSupervision:
    """The tentpole contract: the pool self-heals — a dead worker is
    respawned from the warm parent image, only its in-flight chunk is
    re-run, and the result stays bit-identical without ever leaving
    the process backend."""

    @pytest.mark.parametrize("task", [0, 1, 2, 3])
    def test_boundary_kill_every_task(self, task):
        """SIGKILL at every chunk boundary in turn: the supervisor
        respawns and re-dispatches, bit-identical, no degradation."""
        from repro.runtime import WorkerKiller

        _, tresult = _prepare(DOALL_SRC)
        runner, outcome, tracer, _ = _run_process(
            tresult, 4, injectors=[WorkerKiller(seed=0, task=task)])
        disturbed = _fingerprint(runner, outcome)
        runner2, outcome2, _, _ = _run_process(tresult, 4)
        assert disturbed == _fingerprint(runner2, outcome2)
        assert not tracer.metrics.get("runtime.mc_degraded", 0)
        assert tracer.metrics.get("runtime.mc_restart") == 1
        assert tracer.metrics.get("runtime.mc_retry") == 1

    def test_mid_chunk_kill_retry_safe(self):
        """Self-SIGKILL past the write fence: the audit proves the
        chunk idempotent (privatized + write-only stores), so the
        respawn re-runs it in place."""
        from repro.runtime import WorkerKiller

        _, tresult = _prepare(DOALL_SRC)
        runner, outcome, tracer, _ = _run_process(
            tresult, 4,
            injectors=[WorkerKiller(seed=0, task=1, after_iter=0)])
        disturbed = _fingerprint(runner, outcome)
        runner2, outcome2, _, _ = _run_process(tresult, 4)
        assert disturbed == _fingerprint(runner2, outcome2)
        assert not tracer.metrics.get("runtime.mc_degraded", 0)
        assert tracer.metrics.get("runtime.mc_restart") == 1

    def test_mid_chunk_kill_unsafe_degrades(self):
        """A loop whose chunks read-modify-write shared state cannot
        be re-run; mid-chunk death must walk the ladder, and the
        permissive layer recovers sequentially with correct output."""
        from repro.runtime import WorkerKiller

        source = """
int a[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i++) a[i] = i;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 64; i++) {
        a[i] = a[i] * 3 + 1;
    }
    int s = 0;
    for (i = 0; i < 64; i++) s = s + a[i];
    print_int(s);
    return 0;
}
"""
        base, tresult = _prepare(source)
        runner, outcome, tracer, sink = _run_process(
            tresult, 4, strict=False,
            injectors=[WorkerKiller(seed=0, task=1, after_iter=0)])
        assert outcome.output == base.output
        assert tracer.metrics.get("runtime.mc_degrade") == 1
        assert sink.by_code("MC-DEGRADE")

    def test_doacross_stage_death_resumes(self):
        """A DOACROSS stage dies after committing an iteration: the
        replacement resumes from the drained lease boundary instead of
        replaying, and its tokens are re-issued — bit-identical."""
        from repro.runtime import WorkerKiller

        _, tresult = _prepare(DOACROSS_SRC)
        runner, outcome, tracer, _ = _run_process(
            tresult, 4,
            injectors=[WorkerKiller(seed=0, task=1, after_iter=0)])
        disturbed = _fingerprint(runner, outcome)
        runner2, outcome2, _, _ = _run_process(tresult, 4)
        assert disturbed == _fingerprint(runner2, outcome2)
        assert not tracer.metrics.get("runtime.mc_degraded", 0)
        assert tracer.metrics.get("runtime.mc_restart") == 1

    def test_token_drop_reissued(self):
        """Swallowed sync-token posts are re-issued by the parent from
        the committed-iteration stream; downstream stages unblock."""
        from repro.runtime import TokenPostDropper

        _, tresult = _prepare(DOACROSS_SRC)
        runner, outcome, tracer, _ = _run_process(
            tresult, 4, injectors=[TokenPostDropper(seed=0, task=0)])
        disturbed = _fingerprint(runner, outcome)
        runner2, outcome2, _, _ = _run_process(tresult, 4)
        assert disturbed == _fingerprint(runner2, outcome2)
        # task 0 owns iterations 0,4,8 of 12 -> three dropped posts
        assert tracer.metrics.get("runtime.mc_token_reissues") == 3
        assert not tracer.metrics.get("runtime.mc_degraded", 0)

    def test_heartbeat_stall_revoked(self):
        """A stalled heartbeat (process alive, beat thread frozen) is
        revoked like a death: the worker is killed and respawned."""
        from repro.runtime import HeartbeatStaller

        _, tresult = _prepare(DOALL_SRC)
        runner, outcome, tracer, _ = _run_process(
            tresult, 4, mc={"heartbeat_timeout": 0.2},
            injectors=[HeartbeatStaller(seed=0, task=0, duration=-1.0,
                                        hold=1.0)])
        disturbed = _fingerprint(runner, outcome)
        runner2, outcome2, _, _ = _run_process(tresult, 4)
        assert disturbed == _fingerprint(runner2, outcome2)
        assert tracer.metrics.get("runtime.mc_restart") == 1
        assert not tracer.metrics.get("runtime.mc_degraded", 0)

    def test_budget_exhaustion_walks_ladder(self, monkeypatch):
        """Every dispatch of task 1 crashes its worker: the supervisor
        burns the retry budget rung by rung (MC-RESTART, MC-RETRY per
        attempt) and then degrades with a structured MC-DEGRADE."""
        monkeypatch.setenv("REPRO_MC_CRASH", "1")
        base, tresult = _prepare(DOALL_SRC)
        runner, outcome, tracer, sink = _run_process(
            tresult, 4, strict=False,
            mc={"max_restarts": 2, "retry_budget": 2})
        assert outcome.output == base.output
        assert sink.by_code("MC-RESTART")
        assert sink.by_code("MC-RETRY")
        assert sink.by_code("MC-DEGRADE")
        assert tracer.metrics.get("runtime.mc_restart") == 2
        assert tracer.metrics.get("runtime.mc_retry") == 2
        assert tracer.metrics.get("runtime.mc_degrade") == 1

    def test_restart_exhaustion_shrinks_pool(self, monkeypatch):
        """With no respawns left the supervisor shrinks: the dead
        worker's chunk is reassigned to a surviving lane (MC-SHRINK)
        and the run still completes on the process backend."""
        monkeypatch.setenv("REPRO_MC_CRASH", "1")
        base, tresult = _prepare(DOALL_SRC)
        runner, outcome, tracer, sink = _run_process(
            tresult, 4, strict=False,
            mc={"max_restarts": 0, "retry_budget": 8})
        assert outcome.output == base.output
        assert sink.by_code("MC-SHRINK")

    def test_deterministic_under_same_seed(self):
        """The same chaos schedule replays to the same metrics and the
        same fingerprint — the harness's reproducibility contract."""
        from repro.runtime import WorkerKiller

        _, tresult = _prepare(DOALL_SRC)
        runs = []
        for _ in range(2):
            runner, outcome, tracer, _ = _run_process(
                tresult, 4, injectors=[WorkerKiller(seed=3, task=2)])
            runs.append((_fingerprint(runner, outcome),
                         tracer.metrics.get("runtime.mc_restart"),
                         tracer.metrics.get("runtime.mc_retry")))
        assert runs[0] == runs[1]


class TestRetryAudit:
    """audit_retry_safety: the static gate that decides whether a
    chunk that died past its write fence may be re-run in place."""

    def _audit(self, source):
        from repro.runtime import audit_retry_safety

        program, sema = parse_and_analyze(source)
        tresult = expand_for_threads(program, sema, ["L"],
                                     optimize=True)
        tl = tresult.loops[0]
        priv = set(getattr(tl.priv, "private_sites", None) or ())
        return audit_retry_safety(tl.loop, sema, priv)

    def test_privatized_and_write_only_is_safe(self):
        # buf writes are privatized (keyed on the assign statement's
        # origin, matching the race lint), out is write-only
        assert self._audit(DOALL_SRC) == []

    def test_shared_rmw_structure_unsafe(self):
        reasons = self._audit("""
int a[32];
int main(void) {
    int i;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 32; i++) { a[i] = a[i] + 1; }
    print_int(a[0]);
    return 0;
}
""")
        assert any("read and written" in r for r in reasons)


class TestSegmentGuards:
    """Satellite: shared-memory segments are unlinked on every exit
    path — normal close, constructor failure, SIGTERM teardown."""

    def _shm_entries(self):
        """Segments created by THIS process (the name embeds the
        creating pid) — concurrent repro runs on the host must not
        perturb the leak check."""
        import os as _os

        try:
            return {n for n in _os.listdir("/dev/shm")
                    if n.startswith(f"repro-mc-{_os.getpid()}-")}
        except OSError:
            return set()

    def test_segment_name_is_tagged(self):
        _, tresult = _prepare(DOALL_SRC)
        runner = ParallelRunner(tresult, 2, engine="bytecode",
                                backend="process", workers=2,
                                mc=SMALL_MC)
        assert runner.session.shm.name.startswith("repro-mc-")
        runner.session.close()

    def test_no_leak_after_worker_crash(self, monkeypatch):
        """Forced worker crashes (the whole ladder, ending in
        degradation) must still unlink the segment."""
        monkeypatch.setenv("REPRO_MC_CRASH", "1")
        before = self._shm_entries()
        _, tresult = _prepare(DOALL_SRC)
        run_parallel(tresult, 4, engine="bytecode", backend="process",
                     workers=4, mc=dict(SMALL_MC, max_restarts=1,
                                        retry_budget=1), strict=False)
        assert self._shm_entries() <= before

    def test_no_leak_after_sigterm(self, tmp_path):
        """A SIGTERM'd host process unlinks its segment via the signal
        guard before dying."""
        import subprocess
        import sys
        import textwrap

        script = tmp_path / "host.py"
        script.write_text(textwrap.dedent("""
            import os, signal, sys
            from repro.frontend import parse_and_analyze
            from repro.runtime.multicore import ProcessSession

            src = 'int main(void) { return 0; }'
            program, sema = parse_and_analyze(src)
            session = ProcessSession(program, sema, 2, workers=2,
                                     options={"segment_bytes": 1 << 20,
                                              "arena_bytes": 1 << 16})
            print(session.shm.name, flush=True)
            os.kill(os.getpid(), signal.SIGTERM)
            print("unreachable", flush=True)
        """))
        env = dict(__import__("os").environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [sys.executable, str(script)], cwd="/root/repo",
            capture_output=True, text=True, env=env, timeout=60)
        name = proc.stdout.strip().splitlines()[0]
        assert name.startswith("repro-mc-")
        assert "unreachable" not in proc.stdout
        import os as _os

        assert not _os.path.exists(f"/dev/shm/{name}")

    def test_init_failure_does_not_leak(self, monkeypatch):
        """If session construction fails after the segment exists, the
        constructor unlinks it before re-raising."""
        import repro.runtime.multicore as mc

        def boom(program):
            raise RuntimeError("forced init failure")

        monkeypatch.setattr(mc, "_fingerprint_for", boom)
        before = self._shm_entries()
        program, sema = parse_and_analyze(DOALL_SRC)
        with pytest.raises(RuntimeError, match="forced init failure"):
            mc.ProcessSession(program, sema, 2, workers=2,
                              options=SMALL_MC)
        assert self._shm_entries() <= before


class TestSpinBackoff:
    """Satellite: bounded spin-waits escalate to sleeps past the spin
    threshold, and the backoff count surfaces as a runtime metric."""

    def test_backoff_counter_surfaces(self):
        _, tresult = _prepare(DOACROSS_SRC)
        runner, outcome, tracer, _ = _run_process(tresult, 4)
        # materialized (possibly zero) whenever the backend ran
        assert "runtime.mc_spin_backoffs" in tracer.metrics.as_dict()

    def test_backoffs_fire_under_stall(self):
        """A delayed token post forces downstream stages past the spin
        threshold into the sleep ladder."""
        from repro.runtime import TokenPostDelayer

        _, tresult = _prepare(DOACROSS_SRC)
        runner, outcome, tracer, _ = _run_process(
            tresult, 4,
            injectors=[TokenPostDelayer(seed=0, task=0, seconds=0.05)])
        runner2, outcome2, _, _ = _run_process(tresult, 4)
        assert _fingerprint(runner, outcome) == \
            _fingerprint(runner2, outcome2)
        assert tracer.metrics.get("runtime.mc_spin_backoffs", 0) > 0
