"""DDG serialization + verification-report tests."""

from hypothesis import given, settings, strategies as st

from repro.analysis.ddg import ANTI, DDG, FLOW, OUTPUT
from repro.analysis.ddg_io import (
    ddg_from_dict, ddg_to_dict, load_ddg, save_profile,
    verification_report,
)
from repro.analysis import profile_loop
from repro.frontend import ast, parse_and_analyze

SRC = """
int buf[4];
int acc;
int main(void) {
    int i; int k;
    L: for (i = 0; i < 5; i++) {
        for (k = 0; k < 4; k++) buf[k] = i;
        acc = acc + buf[0];
    }
    print_int(acc);
    return 0;
}
"""


def make_profile():
    program, sema = parse_and_analyze(SRC)
    loop = ast.find_loop(program, "L")
    return program, profile_loop(program, sema, loop)


class TestRoundTrip:
    def test_dict_roundtrip(self):
        _, profile = make_profile()
        ddg = profile.ddg
        back = ddg_from_dict(ddg_to_dict(ddg))
        assert back.sites == ddg.sites
        assert back.edges == ddg.edges
        assert back.upward_exposed == ddg.upward_exposed
        assert back.downward_exposed == ddg.downward_exposed
        assert back.dyn_counts == ddg.dyn_counts

    def test_file_roundtrip(self, tmp_path):
        _, profile = make_profile()
        path = str(tmp_path / "g.json")
        save_profile(profile, path)
        back = load_ddg(path)
        assert back.edges == profile.ddg.edges

    @given(st.lists(
        st.tuples(st.integers(1, 30), st.integers(1, 30),
                  st.sampled_from([FLOW, ANTI, OUTPUT]), st.booleans()),
        max_size=30,
    ))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_graph_roundtrip(self, edges):
        ddg = DDG()
        for src, dst, kind, carried in edges:
            ddg.add_site(src, True)
            ddg.add_site(dst, False)
            ddg.add_edge(src, dst, kind, carried)
        back = ddg_from_dict(ddg_to_dict(ddg))
        assert back.edges == ddg.edges and back.sites == ddg.sites


class TestVerificationReport:
    def test_report_contents(self):
        program, profile = make_profile()
        text = verification_report(program, profile)
        assert "Dependence graph of loop 'L'" in text
        assert "PRIVATE" in text        # buf accesses
        assert "shared" in text         # acc accumulator
        assert "carried" in text
        assert "on ['buf']" in text or "buf" in text

    def test_hand_edited_graph_usable(self, tmp_path):
        """The paper's workflow: profile, (human edits), feed back."""
        import json
        program, profile = make_profile()
        path = str(tmp_path / "g.json")
        save_profile(profile, path)
        payload = json.loads(open(path).read())
        # human removes an edge they know is spurious
        payload["ddg"]["edges"] = payload["ddg"]["edges"][:-1]
        open(path, "w").write(json.dumps(payload))
        back = load_ddg(path)
        assert len(back.edges) == len(profile.ddg.edges) - 1
