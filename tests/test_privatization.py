"""Definition 4 (access classes) and Definition 5 (thread-private
classification) tests, including the paper's §3.2 counterexample."""

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    ANTI, DDG, FLOW, OUTPUT, build_access_classes, classify,
    compute_breakdown, profile_loop,
)
from repro.analysis.access_classes import UnionFind
from repro.frontend import ast, parse_and_analyze


def analyze_loop(source, label="L"):
    program, sema = parse_and_analyze(source)
    loop = ast.find_loop(program, label)
    profile = profile_loop(program, sema, loop)
    priv = classify(profile.ddg, build_access_classes(profile.ddg))
    return profile, priv


def labels_of_private(profile, priv):
    out = set()
    for site in priv.private_sites:
        for obj in profile.site_objects.get(site, ()):
            out.add(profile.object_labels[obj])
    return out


class TestUnionFind:
    def test_singleton(self):
        uf = UnionFind()
        uf.add(1)
        assert uf.find(1) == 1

    def test_union_merges(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.find(1) == uf.find(3)

    def test_groups(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.add(3)
        groups = uf.groups()
        assert sorted(map(sorted, groups.values())) == [[1, 2], [3]]

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                    max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_equivalence_properties(self, pairs):
        uf = UnionFind()
        for a, b in pairs:
            uf.union(a, b)
        # transitivity via connected components ground truth
        import networkx as nx
        g = nx.Graph()
        g.add_nodes_from({x for p in pairs for x in p})
        g.add_edges_from(pairs)
        for comp in nx.connected_components(g):
            roots = {uf.find(x) for x in comp}
            assert len(roots) == 1


class TestAccessClassConstruction:
    def test_independent_edges_merge_classes(self):
        ddg = DDG()
        ddg.add_site(1, True)
        ddg.add_site(2, False)
        ddg.add_site(3, True)
        ddg.add_edge(1, 2, FLOW, carried=False)
        classes = build_access_classes(ddg)
        assert classes.class_of(1) == classes.class_of(2)
        assert classes.class_of(3) != classes.class_of(1)

    def test_carried_edges_do_not_merge(self):
        ddg = DDG()
        ddg.add_site(1, True)
        ddg.add_site(2, False)
        ddg.add_edge(1, 2, FLOW, carried=True)
        classes = build_access_classes(ddg)
        assert classes.class_of(1) != classes.class_of(2)


class TestDefinition5:
    def _ddg(self):
        ddg = DDG()
        for site in (1, 2):
            ddg.add_site(site, site == 1)
        ddg.add_edge(1, 2, FLOW, carried=False)   # same class
        return ddg

    def test_private_needs_carried_anti_or_output(self):
        ddg = self._ddg()
        priv = classify(ddg)
        # condition 3 fails: nothing carried
        assert not priv.private_sites

    def test_private_with_carried_output(self):
        ddg = self._ddg()
        ddg.add_edge(1, 1, OUTPUT, carried=True)
        priv = classify(ddg)
        assert priv.private_sites == {1, 2}

    def test_upward_exposure_blocks(self):
        ddg = self._ddg()
        ddg.add_edge(1, 1, OUTPUT, carried=True)
        ddg.upward_exposed.add(2)
        priv = classify(ddg)
        assert not priv.private_sites
        info = priv.class_infos[0]
        assert any("upwards-exposed" in b for b in info.blockers)

    def test_downward_exposure_blocks(self):
        ddg = self._ddg()
        ddg.add_edge(1, 1, OUTPUT, carried=True)
        ddg.downward_exposed.add(1)
        assert not classify(ddg).private_sites

    def test_carried_flow_blocks(self):
        ddg = self._ddg()
        ddg.add_edge(1, 1, OUTPUT, carried=True)
        ddg.add_edge(1, 2, FLOW, carried=True)
        assert not classify(ddg).private_sites

    def test_blocker_poisons_whole_class(self):
        """One exposed member makes the entire equivalence class shared
        — the transitivity point of Definition 4."""
        ddg = DDG()
        for site in (1, 2, 3):
            ddg.add_site(site, True)
        ddg.add_edge(1, 2, FLOW, carried=False)
        ddg.add_edge(2, 3, ANTI, carried=False)
        ddg.add_edge(1, 1, OUTPUT, carried=True)
        ddg.upward_exposed.add(3)
        assert not classify(ddg).private_sites


class TestOnRealLoops:
    def test_scratch_buffer_is_private(self):
        src = """
        int buf[8];
        int out[6];
        int main(void) {
            int i; int k;
            L: for (i = 0; i < 6; i++) {
                for (k = 0; k < 8; k++) buf[k] = i + k;
                out[i] = buf[7] - buf[0];
            }
            print_int(out[5]);
            return 0;
        }
        """
        profile, priv = analyze_loop(src)
        assert "buf" in labels_of_private(profile, priv)

    def test_readonly_input_is_shared(self):
        src = """
        int w[6];
        int buf[4];
        int main(void) {
            int i; int k;
            for (i = 0; i < 6; i++) w[i] = i;
            L: for (i = 0; i < 6; i++) {
                for (k = 0; k < 4; k++) buf[k] = w[i] * k;
                print_int(buf[3]);
            }
            return 0;
        }
        """
        profile, priv = analyze_loop(src)
        private = labels_of_private(profile, priv)
        assert "buf" in private and "w" not in private

    def test_accumulator_is_not_private(self):
        src = """
        int acc;
        int main(void) {
            int i;
            L: for (i = 0; i < 6; i++) {
                acc = acc + i;
            }
            print_int(acc);
            return 0;
        }
        """
        profile, priv = analyze_loop(src)
        assert "acc" not in labels_of_private(profile, priv)

    def test_paper_section32_example(self):
        """The paper's *p / a[i] example: a conditional write through an
        ambiguous pointer shares a class with the certain read; the
        class is decided as a unit (here: not private, because *p's
        target alternates and the values escape)."""
        src = """
        int a[8];
        int b;
        int main(void) {
            int i;
            int *p;
            L: for (i = 0; i < 6; i++) {
                if (i % 2) { p = &a[i]; } else { p = &b; }
                *p = 0;
                if (i % 2) { a[i] = *p + 1; }
            }
            print_int(a[3] + b);
            return 0;
        }
        """
        profile, priv = analyze_loop(src)
        # the loads/stores through p form one class (loop-independent
        # dependences connect them)
        star_sites = [
            site for site, objs in profile.site_objects.items()
            if {profile.object_labels[o] for o in objs} >= {"a", "b"}
        ]
        if star_sites:
            roots = {priv.classes.class_of(s) for s in star_sites}
            assert len(roots) == 1

    def test_malloc_reuse_makes_nodes_private(self):
        """The dijkstra story: per-iteration malloc/free with allocator
        address reuse produces carried anti/output deps -> private."""
        src = """
        struct n { int v; struct n *next; };
        int out[6];
        int main(void) {
            int i;
            L: for (i = 0; i < 6; i++) {
                struct n *x = (struct n*)malloc(sizeof(struct n));
                x->v = i * 3;
                out[i] = x->v;
                free(x);
            }
            print_int(out[5]);
            return 0;
        }
        """
        profile, priv = analyze_loop(src)
        private = labels_of_private(profile, priv)
        assert any("malloc" in lbl for lbl in private)


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        src = """
        int buf[4]; int out[6]; int acc;
        int main(void) {
            int i; int k;
            L: for (i = 0; i < 6; i++) {
                for (k = 0; k < 4; k++) buf[k] = i;
                out[i] = buf[0];
                acc = acc + out[i];
            }
            print_int(acc);
            return 0;
        }
        """
        profile, priv = analyze_loop(src)
        bd = compute_breakdown(profile.ddg, priv)
        f = bd.fractions()
        assert abs(sum(f.values()) - 1.0) < 1e-9
        assert bd.total == profile.ddg.total_dynamic_accesses()
        assert bd.expandable > 0 and bd.carried > 0
