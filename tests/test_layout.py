"""Copy-layout tests: bonded (Fig. 2a), interleaved (Fig. 2b), and the
adaptive scheme (the paper's §6 future work, implemented here)."""

import pytest

from repro.frontend import parse_and_analyze, print_program
from repro.interp import Machine
from repro.runtime import run_parallel
from repro.transform import TransformError, expand_for_threads

ARRAY_KERNEL = """
int tbl[6];
int sums[4];
int main(void) {
    int i; int k;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 4; i++) {
        for (k = 0; k < 6; k++) tbl[k] = i * k + 1;
        sums[i] = tbl[5] - tbl[0];
    }
    for (i = 0; i < 4; i++) print_int(sums[i]);
    return 0;
}
"""

HEAP_KERNEL = """
int sums[4];
int main(void) {
    int i; int k;
    int *w = (int*)malloc(sizeof(int) * 6);
    #pragma expand parallel(doall)
    L: for (i = 0; i < 4; i++) {
        for (k = 0; k < 6; k++) w[k] = i * k + 1;
        sums[i] = w[5];
    }
    for (i = 0; i < 4; i++) print_int(sums[i]);
    return 0;
}
"""

BARE_USE_KERNEL = """
int tbl[6];
int sums[4];
int main(void) {
    int i; int k;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 4; i++) {
        memset(tbl, 0, sizeof(tbl));
        for (k = 0; k < 6; k++) tbl[k] = tbl[k] + i + k;
        sums[i] = tbl[5];
    }
    for (i = 0; i < 4; i++) print_int(sums[i]);
    return 0;
}
"""


def run_layout(source, layout, nthreads=4):
    program, sema = parse_and_analyze(source)
    base = Machine(program, sema)
    base.run()
    result = expand_for_threads(program, sema, ["L"], layout=layout)
    outcome = run_parallel(result, nthreads)
    assert outcome.output == base.output
    assert not outcome.races
    return result


class TestBonded:
    def test_copies_whole_structure_adjacent(self):
        result = run_layout(ARRAY_KERNEL, "bonded")
        text = print_program(result.program)
        assert "__tid * 6" in text  # copy stride = whole array length


class TestInterleaved:
    def test_element_copies_adjacent(self):
        result = run_layout(ARRAY_KERNEL, "interleaved")
        text = print_program(result.program)
        assert "* __nthreads + __tid" in text

    def test_refuses_heap_structures(self):
        program, sema = parse_and_analyze(HEAP_KERNEL)
        with pytest.raises(TransformError, match="recast"):
            expand_for_threads(program, sema, ["L"], layout="interleaved")

    def test_refuses_bare_array_uses(self):
        program, sema = parse_and_analyze(BARE_USE_KERNEL)
        with pytest.raises(TransformError, match="bonded"):
            expand_for_threads(program, sema, ["L"], layout="interleaved")

    @pytest.mark.parametrize("n", [1, 2, 8])
    def test_thread_counts(self, n):
        run_layout(ARRAY_KERNEL, "interleaved", nthreads=n)


class TestAdaptive:
    def test_picks_interleaved_when_legal(self):
        result = run_layout(ARRAY_KERNEL, "adaptive")
        layouts = {
            ev.decl.name: ev.layout
            for ev in result.expansion.expanded_vars.values()
        }
        assert layouts["tbl"] == "interleaved"

    def test_falls_back_for_bare_uses(self):
        result = run_layout(BARE_USE_KERNEL, "adaptive")
        layouts = {
            ev.decl.name: ev.layout
            for ev in result.expansion.expanded_vars.values()
        }
        assert layouts["tbl"] == "bonded"

    def test_heap_structures_bonded_without_error(self):
        result = run_layout(HEAP_KERNEL, "adaptive")
        assert result.expansion.expanded_alloc_origins  # expanded, xN

    def test_mixed_program(self):
        source = """
        int a[4];
        int b[4];
        int out[6];
        int main(void) {
            int i; int k;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 6; i++) {
                for (k = 0; k < 4; k++) a[k] = i + k;
                memset(b, 0, sizeof(b));
                for (k = 0; k < 4; k++) b[k] = b[k] + a[k];
                out[i] = a[3] * 10 + b[3];
            }
            for (i = 0; i < 6; i++) print_int(out[i]);
            return 0;
        }
        """
        result = run_layout(source, "adaptive")
        layouts = {
            ev.decl.name: ev.layout
            for ev in result.expansion.expanded_vars.values()
        }
        assert layouts["a"] == "interleaved"
        assert layouts["b"] == "bonded"


class TestLayoutErrors:
    def test_unknown_layout_rejected(self):
        program, sema = parse_and_analyze(ARRAY_KERNEL)
        with pytest.raises(ValueError):
            expand_for_threads(program, sema, ["L"], layout="diagonal")
