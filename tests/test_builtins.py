"""Builtin function behaviour tests."""

import pytest

from repro.interp import run_source


def out(body, prelude=""):
    return run_source(
        f"{prelude}\nint main(void) {{ {body} return 0; }}"
    ).output


class TestMath:
    def test_sqrt(self):
        assert out("print_double(sqrt(144.0));") == ["12"]

    def test_floor_ceil(self):
        assert out("print_double(floor(2.7)); print_double(ceil(2.1));") \
            == ["2", "3"]

    def test_exp_log_roundtrip(self):
        assert out("print_double(log(exp(3.0)));") == ["3"]

    def test_trig(self):
        assert out("print_double(sin(0.0)); print_double(cos(0.0));") \
            == ["0", "1"]

    def test_pow(self):
        assert out("print_double(pow(3.0, 3.0));") == ["27"]

    def test_abs_variants(self):
        assert out("print_int(abs(-7)); print_int(labs(-9));") == ["7", "9"]

    def test_fabs(self):
        assert out("print_double(fabs(-1.25));") == ["1.25"]


class TestMemoryBuiltins:
    def test_memmove_alias(self):
        body = """
        int a[4]; int i;
        for (i = 0; i < 4; i++) a[i] = i + 1;
        memmove(a, a, sizeof(a));
        for (i = 0; i < 4; i++) print_int(a[i]);
        """
        assert out(body) == ["1", "2", "3", "4"]

    def test_memcpy_between_types(self):
        body = """
        double d = 2.5;
        double e;
        memcpy(&e, &d, sizeof(double));
        print_double(e);
        """
        assert out(body) == ["2.5"]

    def test_memset_negative_byte(self):
        body = """
        unsigned char b[3];
        memset(b, -1, 3);
        print_int(b[0]); print_int(b[2]);
        """
        assert out(body) == ["255", "255"]

    def test_strlen_empty(self):
        body = 'char s[4]; s[0] = 0; print_int((int)strlen(s));'
        assert out(body) == ["0"]

    def test_calloc_counts(self):
        body = """
        int *p = (int*)calloc(3, sizeof(int));
        print_int(p[0] + p[1] + p[2]);
        free(p);
        """
        assert out(body) == ["0"]


class TestPrinting:
    def test_print_int_negative(self):
        assert out("print_int(-42);") == ["-42"]

    def test_print_double_precision(self):
        assert out("print_double(1.0 / 3.0);") == ["0.333333"]

    def test_print_double_integral_compact(self):
        assert out("print_double(5.0);") == ["5"]

    def test_print_str_escapes(self):
        assert out(r'print_str("a\tb");') == ["a\tb"]

    def test_assert_true_passes(self):
        assert out("assert_true(1 == 1); print_int(1);") == ["1"]

    def test_assert_true_fails(self):
        from repro.interp import InterpError
        with pytest.raises(InterpError, match="assert_true"):
            out("assert_true(1 == 2);")


class TestAllocatorBehaviour:
    def test_same_size_free_then_alloc_reuses(self):
        body = """
        int *a = (int*)malloc(16);
        int *b;
        free(a);
        b = (int*)malloc(16);
        print_int(a == b ? 1 : 0);
        """
        assert out(body) == ["1"]

    def test_realloc_null(self):
        body = """
        int *p = (int*)realloc(0, 8);
        p[0] = 3;
        print_int(p[0]);
        free(p);
        """
        assert out(body) == ["3"]

    def test_allocation_costs_counted(self):
        machine = run_source(
            "int main(void) { int i; for (i = 0; i < 10; i++)"
            " { free(malloc(8)); } return 0; }"
        )
        assert machine.cost.cycles > 10 * 90  # malloc+free costs
