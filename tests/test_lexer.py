"""Lexer unit tests."""

import pytest

from repro.frontend.lexer import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "EOF"

    def test_identifier(self):
        tok = tokenize("alpha_1")[0]
        assert tok.kind == "ID" and tok.text == "alpha_1"

    def test_keyword(self):
        assert tokenize("while")[0].kind == "KW"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("__tid")[0].kind == "ID"

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert toks[0].line == 1 and toks[0].col == 1
        assert toks[1].line == 2 and toks[1].col == 3


class TestNumbers:
    def test_decimal_int(self):
        assert tokenize("42")[0].value == 42

    def test_hex_int(self):
        assert tokenize("0xff")[0].value == 255

    def test_hex_uppercase(self):
        assert tokenize("0XAB")[0].value == 0xAB

    def test_int_suffixes_ignored(self):
        assert tokenize("42UL")[0].value == 42

    def test_float(self):
        tok = tokenize("3.5")[0]
        assert tok.kind == "FLOAT" and tok.value == 3.5

    def test_float_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0

    def test_float_negative_exponent(self):
        assert tokenize("2.5e-2")[0].value == 0.025

    def test_float_f_suffix(self):
        tok = tokenize("1.5f")[0]
        assert tok.kind == "FLOAT" and tok.value == 1.5

    def test_leading_dot_float(self):
        assert tokenize(".25")[0].value == 0.25

    def test_member_access_is_not_float(self):
        assert texts("a.b") == ["a", ".", "b"]


class TestCharAndString:
    def test_char_literal(self):
        assert tokenize("'A'")[0].value == 65

    def test_char_escape_newline(self):
        assert tokenize(r"'\n'")[0].value == 10

    def test_char_escape_nul(self):
        assert tokenize(r"'\0'")[0].value == 0

    def test_char_hex_escape(self):
        assert tokenize(r"'\x41'")[0].value == 65

    def test_string_literal(self):
        assert tokenize('"hi"')[0].value == "hi"

    def test_string_with_escapes(self):
        assert tokenize(r'"a\tb\n"')[0].value == "a\tb\n"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_char_raises(self):
        with pytest.raises(LexError):
            tokenize("'a")


class TestOperators:
    def test_longest_match_shift_assign(self):
        assert texts("a <<= 1") == ["a", "<<=", "1"]

    def test_arrow_vs_minus(self):
        assert texts("a->b - c") == ["a", "->", "b", "-", "c"]

    def test_increment_vs_plus(self):
        assert texts("a++ + b") == ["a", "++", "+", "b"]

    def test_ellipsis(self):
        assert "..." in texts("f(int a, ...)")

    def test_all_compound_assigns(self):
        source = "+= -= *= /= %= &= |= ^= <<= >>="
        assert texts(source) == source.split()

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestCommentsAndPragmas:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\nb") == ["ID", "ID", "EOF"]

    def test_block_comment_skipped(self):
        assert kinds("a /* x\ny */ b") == ["ID", "ID", "EOF"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_pragma_token(self):
        toks = tokenize("#pragma expand parallel(doall)\nint x;")
        assert toks[0].kind == "PRAGMA"
        assert toks[0].text == "expand parallel(doall)"

    def test_include_directive_ignored(self):
        assert kinds("#include <stdio.h>\nint x;") == \
            ["KW", "ID", "OP", "EOF"]
