"""Soundness property: the static DDG over-approximates the profiled DDG.

The paper's §4.1 argument — static dependence analysis is too
conservative to parallelize these loops — is only honest if the static
graph never *under*-approximates: every dependence the profiler can
observe at runtime must have a static counterpart.  This suite checks
that property on every benchmark kernel:

* every profiled access site is a static site (and keeps its
  store/load role);
* every profiled dependence edge (src, dst, kind, carried) is a static
  edge — an exact directed superset, not merely unordered overlap;
* every profiled upward/downward-exposed site is statically exposed.
"""

import pytest

from repro.analysis import build_static_ddg
from repro.analysis.profiler import profile_loop
from repro.bench import all_benchmarks
from repro.frontend import ast, parse_and_analyze

KERNELS = [
    (spec, label)
    for spec in all_benchmarks()
    for label in spec.loop_labels
]


@pytest.fixture(scope="module")
def ddg_pairs():
    """(profiled DDG, static DDG) per kernel loop, computed once."""
    out = {}
    for spec, label in KERNELS:
        program, sema = parse_and_analyze(spec.source)
        loop = ast.find_loop(program, label)
        profile = profile_loop(program, sema, loop)
        static = build_static_ddg(program, sema, loop)
        out[(spec.name, label)] = (profile.ddg, static)
    return out


@pytest.mark.parametrize(
    "name,label", [(s.name, lb) for s, lb in KERNELS],
    ids=[f"{s.name}-{lb}" for s, lb in KERNELS],
)
def test_sites_superset(ddg_pairs, name, label):
    profiled, static = ddg_pairs[(name, label)]
    assert profiled.sites <= static.sites
    assert profiled.store_sites <= static.store_sites
    assert profiled.load_sites <= static.load_sites


@pytest.mark.parametrize(
    "name,label", [(s.name, lb) for s, lb in KERNELS],
    ids=[f"{s.name}-{lb}" for s, lb in KERNELS],
)
def test_edges_superset(ddg_pairs, name, label):
    profiled, static = ddg_pairs[(name, label)]
    missing = sorted(e for e in profiled.edges if e not in static.edges)
    assert not missing, (
        f"profiled dependences with no static counterpart: {missing[:10]}"
    )


@pytest.mark.parametrize(
    "name,label", [(s.name, lb) for s, lb in KERNELS],
    ids=[f"{s.name}-{lb}" for s, lb in KERNELS],
)
def test_exposure_superset(ddg_pairs, name, label):
    profiled, static = ddg_pairs[(name, label)]
    assert profiled.upward_exposed <= static.upward_exposed
    assert profiled.downward_exposed <= static.downward_exposed


def test_static_still_more_conservative():
    """The over-approximation is not vacuous the other way: the static
    graph carries strictly more dependence edges than the profile on at
    least one kernel (the paper's motivation for profiling)."""
    spec = next(s for s in all_benchmarks() if s.name == "dijkstra")
    program, sema = parse_and_analyze(spec.source)
    loop = ast.find_loop(program, spec.loop_labels[0])
    profile = profile_loop(program, sema, loop)
    static = build_static_ddg(program, sema, loop)
    assert len(static.edges) > len(profile.ddg.edges)
