"""Fault-injection harness: every injected fault is either *detected*
(a structured diagnostic is produced) or *recovered* (the loop re-runs
sequentially and the program output is bit-identical to the
untransformed baseline)."""

import pytest

from repro.diagnostics import DiagnosticSink
from repro.frontend import parse_and_analyze
from repro.interp import Machine
from repro.runtime import (
    CopyIndexSkew, HeartbeatStaller, RaceError, SpanCorruptor,
    SyncTokenDropper, ThreadAborter, TokenPostDelayer, TokenPostDropper,
    WorkerKiller, run_parallel,
)
from repro.transform import expand_for_threads


@pytest.fixture(params=["ast", "bytecode"])
def engine(request):
    """Every fault-injection contract holds on both interpreter tiers."""
    return request.param


@pytest.fixture(params=["simulated", "process"])
def backend(request):
    """...and on both execution backends.  With injectors armed the
    process backend's capability audit routes every loop through the
    simulated controllers (``MC-INSTRUMENTED``) — the point is that the
    fault contracts survive the backend seam unchanged."""
    if request.param == "process":
        from repro.runtime import process_backend_available

        ok, why = process_backend_available()
        if not ok:
            pytest.skip(f"process backend unavailable: {why}")
    return request.param


def prepare(source, labels=("L",), optimize=False, engine="ast"):
    program, sema = parse_and_analyze(source)
    base = Machine(program, sema, engine=engine)
    base.run()
    result = expand_for_threads(program, sema, list(labels),
                                optimize=optimize)
    return base, result


# Statically-sized scratch structure: spans fold into literal offsets,
# so this exercises the skew/abort injectors (which hook tid reads and
# statement execution, not span stores).
DOALL_SRC = """
int buf[16];
int out[12];
int main(void) {
    int i; int k;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        out[i] = buf[15];
    }
    for (i = 0; i < 12; i++) print_int(out[i]);
    return 0;
}
"""

# Runtime-sized malloc: the expansion emits fat-pointer structs with an
# explicit ``.span = n * sizeof(int)`` store — the SpanCorruptor target.
FAT_SRC = """
int n;
int out[12];
int main(void) {
    int i; int k;
    n = 16;
    int* buf = malloc(n * sizeof(int));
    #pragma expand parallel(doall)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < n; k++) buf[k] = i * k + 1;
        out[i] = buf[n - 1];
    }
    for (i = 0; i < 12; i++) print_int(out[i]);
    return 0;
}
"""

DOACROSS_SRC = """
int buf[16];
int acc;
int main(void) {
    int i; int k;
    #pragma expand parallel(doacross)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        acc = acc * 7 + buf[15];
    }
    print_int(acc);
    return 0;
}
"""


class TestSpanCorruptor:
    def test_permissive_recovers_bit_identical(self, engine, backend):
        base, result = prepare(FAT_SRC, engine=engine)
        inj = SpanCorruptor(seed=1)
        sink = DiagnosticSink()
        outcome = run_parallel(result, 4, engine=engine, backend=backend,
                               strict=False, sink=sink,
                               fault_injectors=[inj])
        assert inj.sites, "no span stores found to corrupt"
        assert inj.fired > 0
        assert outcome.output == base.output
        assert outcome.recoveries
        assert sink.by_code("FAULT-SPAN")
        assert sink.by_code("RT-RECOVERED")

    def test_strict_detects_as_race(self, engine, backend):
        base, result = prepare(FAT_SRC, engine=engine)
        with pytest.raises(RaceError) as info:
            run_parallel(result, 4, engine=engine, backend=backend,
                         strict=True,
                         fault_injectors=[SpanCorruptor(seed=1)])
        assert info.value.diagnostic.code == "RT-RACE"


class TestCopyIndexSkew:
    def test_permissive_recovers_bit_identical(self, engine, backend):
        base, result = prepare(DOALL_SRC, engine=engine)
        inj = CopyIndexSkew(seed=7, rate=0.5)
        outcome = run_parallel(result, 4, engine=engine, backend=backend,
                               strict=False, fault_injectors=[inj])
        assert inj.fired > 0
        assert outcome.output == base.output
        assert outcome.recoveries

    def test_strict_detects_as_race(self, engine, backend):
        base, result = prepare(DOALL_SRC, engine=engine)
        with pytest.raises(RaceError):
            run_parallel(result, 4, engine=engine, backend=backend,
                         strict=True,
                         fault_injectors=[CopyIndexSkew(seed=7)])


class TestSyncTokenDropper:
    def test_permissive_repairs_token(self, engine, backend):
        base, result = prepare(DOACROSS_SRC, engine=engine)
        inj = SyncTokenDropper(seed=3)
        sink = DiagnosticSink()
        outcome = run_parallel(result, 4, engine=engine, backend=backend,
                               strict=False, sink=sink,
                               fault_injectors=[inj])
        assert inj.fired > 0
        assert outcome.output == base.output
        codes = [d.code for d in outcome.diagnostics]
        assert "FAULT-SYNC-DROP" in codes  # injection site recorded
        assert "RT-SYNC-DROP" in codes     # detection recorded

    def test_strict_detects_dropped_token(self, engine, backend):
        from repro.runtime import ParallelError

        base, result = prepare(DOACROSS_SRC, engine=engine)
        with pytest.raises(ParallelError) as info:
            run_parallel(result, 4, engine=engine, backend=backend,
                         strict=True,
                         fault_injectors=[SyncTokenDropper(seed=3)])
        assert info.value.diagnostic.code == "RT-SYNC-DROP"
        assert info.value.diagnostic.loop == "L"


class TestThreadAborter:
    def test_permissive_recovers_bit_identical(self, engine, backend):
        base, result = prepare(DOALL_SRC, engine=engine)
        inj = ThreadAborter(seed=0, target_tid=2, after=5)
        outcome = run_parallel(result, 4, engine=engine, backend=backend,
                               strict=False, fault_injectors=[inj])
        assert inj.fired > 0
        assert outcome.output == base.output
        assert outcome.recoveries
        assert outcome.recoveries[0].diagnostic.code == "FAULT-ABORT"

    def test_strict_propagates_abort(self, engine, backend):
        from repro.runtime import ThreadAbortFault

        base, result = prepare(DOALL_SRC, engine=engine)
        with pytest.raises(ThreadAbortFault):
            run_parallel(result, 4, engine=engine, backend=backend,
                         strict=True,
                         fault_injectors=[ThreadAborter(target_tid=1)])


class TestDeterminism:
    def test_same_seed_same_outcome(self, engine, backend):
        runs = []
        for _ in range(2):
            base, result = prepare(DOALL_SRC, engine=engine)
            inj = CopyIndexSkew(seed=42, rate=0.5)
            outcome = run_parallel(result, 4, engine=engine,
                                   backend=backend, strict=False,
                                   fault_injectors=[inj])
            runs.append((inj.fired, tuple(outcome.output),
                         len(outcome.recoveries)))
        assert runs[0] == runs[1]

    def test_different_seed_still_recovers(self, engine, backend):
        for seed in (1, 2, 3):
            base, result = prepare(DOALL_SRC, engine=engine)
            outcome = run_parallel(
                result, 4, engine=engine, backend=backend, strict=False,
                fault_injectors=[CopyIndexSkew(seed=seed, rate=0.5)],
            )
            assert outcome.output == base.output


class TestPermissiveNeverEscapes:
    """In permissive mode no exception escapes run_parallel for any of
    the four fault classes — the headline robustness guarantee."""

    @pytest.mark.parametrize("make_injector,source", [
        (lambda: SpanCorruptor(seed=5), FAT_SRC),
        (lambda: CopyIndexSkew(seed=5, rate=0.5), DOALL_SRC),
        (lambda: SyncTokenDropper(seed=5), DOACROSS_SRC),
        (lambda: ThreadAborter(seed=5, target_tid=1, after=3), DOALL_SRC),
    ], ids=["span", "skew", "sync-drop", "abort"])
    def test_no_unhandled_exception(self, make_injector, source, engine,
                                    backend):
        base, result = prepare(source, engine=engine)
        outcome = run_parallel(result, 4, engine=engine, backend=backend,
                               strict=False,
                               fault_injectors=[make_injector()])
        assert outcome.output == base.output
        assert outcome.races == []


# ---------------------------------------------------------------------------
# process-level chaos: faults against the REAL worker pool
# ---------------------------------------------------------------------------

def _process_or_skip():
    from repro.runtime import process_backend_available

    ok, why = process_backend_available()
    if not ok:
        pytest.skip(f"process backend unavailable: {why}")


@pytest.fixture(params=["bytecode", "native"])
def chaos_engine(request):
    """Process-level chaos heals identically whether the workers run
    the bytecode tier or compiled native chunks."""
    if request.param == "native":
        from repro.interp.native import native_backend_available

        ok, why = native_backend_available()
        if not ok:
            pytest.skip(f"native tier unavailable: {why}")
    return request.param


def _heap_image(memory):
    return [(r.kind, r.label, r.addr, r.size,
             bytes(memory.data[r.addr:r.end]))
            for r in memory._allocs
            if r.live and r.kind in ("global", "heap")]


def _chaos_run(source, injectors, mc=None, engine="bytecode"):
    from repro.obs import Tracer
    from repro.runtime import ParallelRunner

    program, sema = parse_and_analyze(source)
    result = expand_for_threads(program, sema, ["L"], optimize=True)
    tracer = Tracer()
    runner = ParallelRunner(result, 4, engine=engine,
                            backend="process", workers=4,
                            mc=dict({"segment_bytes": 1 << 21,
                                     "arena_bytes": 1 << 18},
                                    **(mc or {})),
                            tracer=tracer, fault_injectors=injectors)
    outcome = runner.run()
    return (_heap_image(runner.machine.memory), tuple(outcome.output),
            tracer.metrics.as_dict())


class TestProcessChaos:
    """The seeded process-level injectors (kill / stall / drop / delay)
    drive faults into the *real* worker pool — unlike the machine-level
    injectors above, which force the MC-INSTRUMENTED fallback — and the
    supervisor must heal every schedule back to a bit-identical heap
    image, with the retry metrics matching the schedule exactly."""

    #: injector factory, mc overrides, source, expected supervision
    #: metrics (exact values: the schedules are deterministic)
    SCENARIOS = [
        ("kill-boundary",
         lambda: WorkerKiller(seed=0, task=1),
         None, DOALL_SRC,
         {"runtime.mc_restart": 1, "runtime.mc_retry": 1}),
        ("kill-mid-chunk",
         lambda: WorkerKiller(seed=0, task=2, after_iter=0),
         None, DOALL_SRC,
         {"runtime.mc_restart": 1, "runtime.mc_retry": 1}),
        ("kill-doacross-stage",
         lambda: WorkerKiller(seed=0, task=1, after_iter=0),
         None, DOACROSS_SRC,
         {"runtime.mc_restart": 1, "runtime.mc_retry": 1}),
        ("drop-posts",
         lambda: TokenPostDropper(seed=0, task=0),
         None, DOACROSS_SRC,
         # task 0 owns iterations 0,4,8 of 12: three re-issued posts
         {"runtime.mc_token_reissues": 3, "runtime.mc_restart": 0}),
        ("stall-heartbeat",
         lambda: HeartbeatStaller(seed=0, task=0, duration=-1.0,
                                  hold=1.0),
         {"heartbeat_timeout": 0.2}, DOALL_SRC,
         {"runtime.mc_restart": 1, "runtime.mc_retry": 1}),
        ("delay-posts",
         lambda: TokenPostDelayer(seed=0, task=0, seconds=0.02),
         None, DOACROSS_SRC,
         {"runtime.mc_restart": 0}),
    ]

    @pytest.mark.parametrize(
        "name,make,mc,source,expect",
        SCENARIOS, ids=[s[0] for s in SCENARIOS])
    def test_heals_bit_identical(self, name, make, mc, source, expect,
                                 chaos_engine):
        _process_or_skip()
        # the baseline heap is engine-invariant: the bytecode base also
        # pins the native-engine chaos run to the same bytes
        base_heap, base_out, base_metrics = _chaos_run(source, None)
        assert base_metrics.get("runtime.worker_tasks", 0) > 0, \
            "scenario kernel must dispatch to real workers"
        heap, out, metrics = _chaos_run(source, [make()], mc=mc,
                                        engine=chaos_engine)
        assert out == base_out
        assert heap == base_heap
        assert not metrics.get("runtime.mc_degraded", 0)
        for key, want in expect.items():
            assert metrics.get(key, 0) == want, \
                f"{name}: {key} = {metrics.get(key, 0)}, want {want}"
        if chaos_engine == "native" and source is DOALL_SRC:
            # chunks not disturbed by per-iteration chaos must have
            # dispatched into the compiled entry point, and any
            # fallback was accounted (never silent)
            assert (metrics.get("runtime.native_chunks", 0)
                    + metrics.get("runtime.native_fallbacks", 0)) > 0

    @pytest.mark.parametrize(
        "name,make,mc,source,expect",
        SCENARIOS, ids=[s[0] for s in SCENARIOS])
    def test_schedule_is_deterministic(self, name, make, mc, source,
                                       expect, chaos_engine):
        _process_or_skip()
        runs = []
        for _ in range(2):
            heap, out, metrics = _chaos_run(source, [make()], mc=mc,
                                            engine=chaos_engine)
            runs.append((heap, out,
                         metrics.get("runtime.mc_restart", 0),
                         metrics.get("runtime.mc_retry", 0),
                         metrics.get("runtime.mc_token_reissues", 0)))
        assert runs[0] == runs[1]


class TestSupervisorLadder:
    """The supervisor's retry → shrink → degrade ladder heals to the
    same bytes on both worker tiers (bytecode and native)."""

    def _ladder_run(self, mc, monkeypatch, engine):
        from repro.diagnostics import DiagnosticSink
        from repro.obs import Tracer
        from repro.runtime import ParallelRunner

        monkeypatch.setenv("REPRO_MC_CRASH", "1")
        program, sema = parse_and_analyze(DOALL_SRC)
        result = expand_for_threads(program, sema, ["L"], optimize=True)
        tracer = Tracer()
        sink = DiagnosticSink()
        runner = ParallelRunner(result, 4, engine=engine,
                                backend="process", workers=4,
                                strict=False, sink=sink,
                                mc=dict({"segment_bytes": 1 << 21,
                                         "arena_bytes": 1 << 18}, **mc),
                                tracer=tracer)
        outcome = runner.run()
        return outcome, tracer.metrics.as_dict(), sink

    def test_budget_exhaustion_walks_ladder(self, monkeypatch,
                                            chaos_engine):
        _process_or_skip()
        base, _ = prepare(DOALL_SRC)
        outcome, metrics, sink = self._ladder_run(
            {"max_restarts": 2, "retry_budget": 2}, monkeypatch,
            chaos_engine)
        assert outcome.output == base.output
        assert sink.by_code("MC-RESTART")
        assert sink.by_code("MC-RETRY")
        assert sink.by_code("MC-DEGRADE")
        assert metrics.get("runtime.mc_restart") == 2
        assert metrics.get("runtime.mc_retry") == 2
        assert metrics.get("runtime.mc_degrade") == 1

    def test_restart_exhaustion_shrinks_pool(self, monkeypatch,
                                             chaos_engine):
        _process_or_skip()
        base, _ = prepare(DOALL_SRC)
        outcome, metrics, sink = self._ladder_run(
            {"max_restarts": 0, "retry_budget": 8}, monkeypatch,
            chaos_engine)
        assert outcome.output == base.output
        assert sink.by_code("MC-SHRINK")
