"""Fault-injection harness: every injected fault is either *detected*
(a structured diagnostic is produced) or *recovered* (the loop re-runs
sequentially and the program output is bit-identical to the
untransformed baseline)."""

import pytest

from repro.diagnostics import DiagnosticSink
from repro.frontend import parse_and_analyze
from repro.interp import Machine
from repro.runtime import (
    CopyIndexSkew, RaceError, SpanCorruptor, SyncTokenDropper,
    ThreadAborter, run_parallel,
)
from repro.transform import expand_for_threads


@pytest.fixture(params=["ast", "bytecode"])
def engine(request):
    """Every fault-injection contract holds on both interpreter tiers."""
    return request.param


@pytest.fixture(params=["simulated", "process"])
def backend(request):
    """...and on both execution backends.  With injectors armed the
    process backend's capability audit routes every loop through the
    simulated controllers (``MC-INSTRUMENTED``) — the point is that the
    fault contracts survive the backend seam unchanged."""
    if request.param == "process":
        from repro.runtime import process_backend_available

        ok, why = process_backend_available()
        if not ok:
            pytest.skip(f"process backend unavailable: {why}")
    return request.param


def prepare(source, labels=("L",), optimize=False, engine="ast"):
    program, sema = parse_and_analyze(source)
    base = Machine(program, sema, engine=engine)
    base.run()
    result = expand_for_threads(program, sema, list(labels),
                                optimize=optimize)
    return base, result


# Statically-sized scratch structure: spans fold into literal offsets,
# so this exercises the skew/abort injectors (which hook tid reads and
# statement execution, not span stores).
DOALL_SRC = """
int buf[16];
int out[12];
int main(void) {
    int i; int k;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        out[i] = buf[15];
    }
    for (i = 0; i < 12; i++) print_int(out[i]);
    return 0;
}
"""

# Runtime-sized malloc: the expansion emits fat-pointer structs with an
# explicit ``.span = n * sizeof(int)`` store — the SpanCorruptor target.
FAT_SRC = """
int n;
int out[12];
int main(void) {
    int i; int k;
    n = 16;
    int* buf = malloc(n * sizeof(int));
    #pragma expand parallel(doall)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < n; k++) buf[k] = i * k + 1;
        out[i] = buf[n - 1];
    }
    for (i = 0; i < 12; i++) print_int(out[i]);
    return 0;
}
"""

DOACROSS_SRC = """
int buf[16];
int acc;
int main(void) {
    int i; int k;
    #pragma expand parallel(doacross)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        acc = acc * 7 + buf[15];
    }
    print_int(acc);
    return 0;
}
"""


class TestSpanCorruptor:
    def test_permissive_recovers_bit_identical(self, engine, backend):
        base, result = prepare(FAT_SRC, engine=engine)
        inj = SpanCorruptor(seed=1)
        sink = DiagnosticSink()
        outcome = run_parallel(result, 4, engine=engine, backend=backend,
                               strict=False, sink=sink,
                               fault_injectors=[inj])
        assert inj.sites, "no span stores found to corrupt"
        assert inj.fired > 0
        assert outcome.output == base.output
        assert outcome.recoveries
        assert sink.by_code("FAULT-SPAN")
        assert sink.by_code("RT-RECOVERED")

    def test_strict_detects_as_race(self, engine, backend):
        base, result = prepare(FAT_SRC, engine=engine)
        with pytest.raises(RaceError) as info:
            run_parallel(result, 4, engine=engine, backend=backend,
                         strict=True,
                         fault_injectors=[SpanCorruptor(seed=1)])
        assert info.value.diagnostic.code == "RT-RACE"


class TestCopyIndexSkew:
    def test_permissive_recovers_bit_identical(self, engine, backend):
        base, result = prepare(DOALL_SRC, engine=engine)
        inj = CopyIndexSkew(seed=7, rate=0.5)
        outcome = run_parallel(result, 4, engine=engine, backend=backend,
                               strict=False, fault_injectors=[inj])
        assert inj.fired > 0
        assert outcome.output == base.output
        assert outcome.recoveries

    def test_strict_detects_as_race(self, engine, backend):
        base, result = prepare(DOALL_SRC, engine=engine)
        with pytest.raises(RaceError):
            run_parallel(result, 4, engine=engine, backend=backend,
                         strict=True,
                         fault_injectors=[CopyIndexSkew(seed=7)])


class TestSyncTokenDropper:
    def test_permissive_repairs_token(self, engine, backend):
        base, result = prepare(DOACROSS_SRC, engine=engine)
        inj = SyncTokenDropper(seed=3)
        sink = DiagnosticSink()
        outcome = run_parallel(result, 4, engine=engine, backend=backend,
                               strict=False, sink=sink,
                               fault_injectors=[inj])
        assert inj.fired > 0
        assert outcome.output == base.output
        codes = [d.code for d in outcome.diagnostics]
        assert "FAULT-SYNC-DROP" in codes  # injection site recorded
        assert "RT-SYNC-DROP" in codes     # detection recorded

    def test_strict_detects_dropped_token(self, engine, backend):
        from repro.runtime import ParallelError

        base, result = prepare(DOACROSS_SRC, engine=engine)
        with pytest.raises(ParallelError) as info:
            run_parallel(result, 4, engine=engine, backend=backend,
                         strict=True,
                         fault_injectors=[SyncTokenDropper(seed=3)])
        assert info.value.diagnostic.code == "RT-SYNC-DROP"
        assert info.value.diagnostic.loop == "L"


class TestThreadAborter:
    def test_permissive_recovers_bit_identical(self, engine, backend):
        base, result = prepare(DOALL_SRC, engine=engine)
        inj = ThreadAborter(seed=0, target_tid=2, after=5)
        outcome = run_parallel(result, 4, engine=engine, backend=backend,
                               strict=False, fault_injectors=[inj])
        assert inj.fired > 0
        assert outcome.output == base.output
        assert outcome.recoveries
        assert outcome.recoveries[0].diagnostic.code == "FAULT-ABORT"

    def test_strict_propagates_abort(self, engine, backend):
        from repro.runtime import ThreadAbortFault

        base, result = prepare(DOALL_SRC, engine=engine)
        with pytest.raises(ThreadAbortFault):
            run_parallel(result, 4, engine=engine, backend=backend,
                         strict=True,
                         fault_injectors=[ThreadAborter(target_tid=1)])


class TestDeterminism:
    def test_same_seed_same_outcome(self, engine, backend):
        runs = []
        for _ in range(2):
            base, result = prepare(DOALL_SRC, engine=engine)
            inj = CopyIndexSkew(seed=42, rate=0.5)
            outcome = run_parallel(result, 4, engine=engine,
                                   backend=backend, strict=False,
                                   fault_injectors=[inj])
            runs.append((inj.fired, tuple(outcome.output),
                         len(outcome.recoveries)))
        assert runs[0] == runs[1]

    def test_different_seed_still_recovers(self, engine, backend):
        for seed in (1, 2, 3):
            base, result = prepare(DOALL_SRC, engine=engine)
            outcome = run_parallel(
                result, 4, engine=engine, backend=backend, strict=False,
                fault_injectors=[CopyIndexSkew(seed=seed, rate=0.5)],
            )
            assert outcome.output == base.output


class TestPermissiveNeverEscapes:
    """In permissive mode no exception escapes run_parallel for any of
    the four fault classes — the headline robustness guarantee."""

    @pytest.mark.parametrize("make_injector,source", [
        (lambda: SpanCorruptor(seed=5), FAT_SRC),
        (lambda: CopyIndexSkew(seed=5, rate=0.5), DOALL_SRC),
        (lambda: SyncTokenDropper(seed=5), DOACROSS_SRC),
        (lambda: ThreadAborter(seed=5, target_tid=1, after=3), DOALL_SRC),
    ], ids=["span", "skew", "sync-drop", "abort"])
    def test_no_unhandled_exception(self, make_injector, source, engine,
                                    backend):
        base, result = prepare(source, engine=engine)
        outcome = run_parallel(result, 4, engine=engine, backend=backend,
                               strict=False,
                               fault_injectors=[make_injector()])
        assert outcome.output == base.output
        assert outcome.races == []
