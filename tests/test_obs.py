"""Observability tests: tracer invariants, Chrome export schema,
disabled-path cost, metrics cross-checks, CLI/trajectory emission."""

import json

import pytest

from repro import expand_and_run
from repro.frontend import parse_and_analyze
from repro.obs import (
    NULL_TRACER, NullTracer, Tracer, chrome_trace, ensure_tracer,
    trace_summary, write_chrome_trace, COMPILE_PID, RUNTIME_PID,
)
from repro.runtime import run_parallel
from repro.transform import OptFlags, expand_for_threads

DOALL_SRC = """
int buf[16];
int out[12];
int main(void) {
    int i; int k;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        out[i] = buf[15];
    }
    for (i = 0; i < 12; i++) print_int(out[i]);
    return 0;
}
"""

DOACROSS_SRC = """
int buf[16];
int acc;
int main(void) {
    int i; int k;
    #pragma expand parallel(doacross)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        acc = acc * 7 + buf[15];
    }
    print_int(acc);
    return 0;
}
"""

#: phases the full expand_and_run workflow must record, in order of
#: first appearance
EXPECTED_PHASES = [
    "parse", "sema", "sequential-baseline", "expand-pipeline",
    "profile", "classify", "pointsto", "promote", "expand",
    "redirect", "plan", "run",
]


@pytest.fixture(scope="module")
def traced_outcome():
    return expand_and_run(DOACROSS_SRC, ["L"], nthreads=4, trace=True)


class TestTracerCore:
    def test_span_nesting_stack_discipline(self):
        t = Tracer()
        with t.phase("outer"):
            with t.phase("inner"):
                pass
            with t.phase("inner2"):
                pass
        assert t.open_spans() == []
        outer, inner, inner2 = t.spans
        assert inner.parent is outer and inner2.parent is outer
        assert inner.depth == outer.depth + 1

    def test_cascade_close_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.phase("outer"):
                t.begin("dangling")
                raise RuntimeError("boom")
        # the contextmanager's end() cascades through the dangling span
        assert t.open_spans() == []
        assert all(s.dur_us is not None for s in t.spans)

    def test_double_close_is_harmless(self):
        t = Tracer()
        a = t.begin("a")
        b = t.begin("b")
        t.end(a)            # cascades through b
        t.end(b)            # already closed: no-op
        t.end(a)
        assert t.open_spans() == []
        assert len(t.spans) == 2

    def test_child_interval_within_parent(self, traced_outcome):
        tracer = traced_outcome.trace
        assert tracer is not None and tracer.open_spans() == []
        for span in tracer.spans:
            if span.parent is not None:
                assert span.start_us >= span.parent.start_us
                assert span.end_us <= span.parent.end_us

    def test_expected_phases_recorded(self, traced_outcome):
        names = [s.name for s in traced_outcome.trace.spans]
        positions = []
        for phase in EXPECTED_PHASES:
            assert phase in names, f"missing phase {phase!r}"
            positions.append(names.index(phase))
        assert positions == sorted(positions)

    def test_runtime_events_have_thread_ids(self, traced_outcome):
        events = traced_outcome.trace.events
        assert events
        names = {e.name for e in events}
        assert "iteration" in names
        assert {"token-wait", "token-post"} & names  # doacross syncs
        nthreads = traced_outcome.parallel.nthreads
        assert all(0 <= e.tid < nthreads for e in events)
        assert all(e.ts >= 0 for e in events)


class TestChromeExport:
    def test_schema(self, traced_outcome):
        doc = chrome_trace(traced_outcome.trace)
        assert doc["otherData"]["generator"] == "repro.obs"
        events = doc["traceEvents"]
        assert events
        json.loads(json.dumps(doc))  # round-trips
        for ev in events:
            assert ev["ph"] in {"X", "i", "M", "C"}
            if ev["ph"] in {"X", "i", "C"}:
                assert isinstance(ev["ts"], (int, float))
                assert ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
            if ev["ph"] == "i":
                # thread-scoped runtime instants; process-scoped label
                # metrics (e.g. interp.engine)
                assert ev["s"] in {"t", "p"}

    def test_two_clock_domains_separated(self, traced_outcome):
        events = chrome_trace(traced_outcome.trace)["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert COMPILE_PID in pids and RUNTIME_PID in pids
        # runtime events sit on per-thread tracks
        tids = {e["tid"] for e in events
                if e["pid"] == RUNTIME_PID and e["ph"] in {"X", "i"}}
        assert len(tids) > 1

    def test_write_and_summary(self, traced_outcome, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced_outcome.trace, str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        text = trace_summary(traced_outcome.trace)
        assert "expand-pipeline" in text
        assert "iteration" in text
        assert "runtime.total_cycles" in text

    def test_empty_tracer_exports(self):
        t = Tracer()
        events = chrome_trace(t)["traceEvents"]
        assert [e for e in events if e["ph"] != "M"] == []
        assert trace_summary(t) == "(empty trace)"


class TestDisabledPath:
    def test_null_tracer_is_falsy_noop(self):
        assert not NULL_TRACER
        assert not NullTracer()
        with NULL_TRACER.phase("x"):
            NULL_TRACER.event("e", 0, 1.0)
            NULL_TRACER.instant("i")
            NULL_TRACER.metrics.inc("k")
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.events == ()
        assert ensure_tracer(None) is NULL_TRACER
        real = Tracer()
        assert ensure_tracer(real) is real

    def test_outcome_trace_none_by_default(self):
        outcome = expand_and_run(DOALL_SRC, ["L"], nthreads=4)
        assert outcome.trace is None
        assert outcome.parallel.trace is None

    def test_tracing_does_not_perturb_simulation(self):
        plain = expand_and_run(DOALL_SRC, ["L"], nthreads=4)
        traced = expand_and_run(DOALL_SRC, ["L"], nthreads=4, trace=True)
        assert traced.output == plain.output
        assert traced.parallel.total_cycles == plain.parallel.total_cycles
        assert (traced.parallel.loop("L").makespan
                == plain.parallel.loop("L").makespan)


class TestMetrics:
    def test_transform_metrics_match_result(self):
        tracer = Tracer()
        program, sema = parse_and_analyze(DOACROSS_SRC)
        result = expand_for_threads(program, sema, ["L"], tracer=tracer)
        m = tracer.metrics
        assert (m["transform.redirected_accesses"]
                == result.redirect_stats.redirected)
        assert (m["transform.span_stores_eliminated"]
                == result.promoter.span_stores_eliminated)
        assert (m["transform.span_stores_inserted"]
                == result.promoter.span_stores_inserted)
        assert (m["transform.fat_pointer_types"]
                == result.promoter.num_fat_types)
        assert m["transform.structures_expanded"] == result.num_privatized
        assert (m["transform.scalars_expanded"]
                == result.expansion.num_scalars)

    def test_unoptimized_eliminates_nothing(self):
        tracer = Tracer()
        program, sema = parse_and_analyze(DOACROSS_SRC)
        expand_for_threads(program, sema, ["L"],
                           optimize=OptFlags.all_off(), tracer=tracer)
        assert tracer.metrics["transform.span_stores_eliminated"] == 0

    def test_runtime_metrics(self, traced_outcome):
        m = traced_outcome.trace.metrics
        par = traced_outcome.parallel
        assert m["runtime.total_cycles"] == par.total_cycles
        assert m["runtime.loop.L.makespan"] == par.loop("L").makespan
        assert (m["runtime.loop.L.iterations"]
                == par.loop("L").iterations)
        assert m["runtime.token_posts"] > 0
        # breakdown categories forwarded
        bd = par.loop("L").breakdown()
        for key in ("work", "sync", "wait", "runtime"):
            assert m[f"runtime.loop.L.{key}_cycles"] == bd[key]

    def test_doall_emits_chunk_events(self):
        tracer = Tracer()
        program, sema = parse_and_analyze(DOALL_SRC)
        result = expand_for_threads(program, sema, ["L"], tracer=tracer)
        run_parallel(result, 4, tracer=tracer)
        names = {e.name for e in tracer.events}
        assert "doall-chunk" in names and "iteration" in names


class TestCLI:
    def test_trace_flag_writes_mixed_domains(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "demo.c"
        src.write_text(DOACROSS_SRC)
        out = tmp_path / "out.json"
        assert main(["parallel", str(src), "--loop", "L", "-n", "4",
                     "--trace", str(out)]) == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        span_names = {e["name"] for e in events
                      if e["ph"] == "X" and e["pid"] == COMPILE_PID}
        assert {"parse", "expand-pipeline", "run"} <= span_names
        assert any(e["pid"] == RUNTIME_PID for e in events)
        assert "VERIFIED" in capsys.readouterr().err

    def test_granular_opt_flags(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "demo.c"
        src.write_text(DOALL_SRC)
        assert main(["expand", str(src), "--loop", "L",
                     "--no-opt-constant-spans", "--no-opt-licm"]) == 0
        assert "__tid" in capsys.readouterr().out

    def test_opt_reenable_roundtrip(self):
        from repro.cli import build_parser, _opt_flags

        parser = build_parser()
        args = parser.parse_args(
            ["expand", "x.c", "--loop", "L", "--no-optimize",
             "--opt", "hoisting"]
        )
        flags = _opt_flags(args)
        assert flags.hoisting
        assert not flags.constant_spans
        assert not flags.selective_promotion

    def test_trace_summary_flag(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "demo.c"
        src.write_text(DOALL_SRC)
        assert main(["run", str(src), "--trace-summary"]) == 0
        err = capsys.readouterr().err
        assert "Phases" in err and "parse" in err


class TestTrajectory:
    def test_emit_trajectory_payload(self, tmp_path):
        from repro.bench.harness import BenchmarkResult, ParallelPoint
        from repro.bench.suite import get
        from repro.bench.trajectory import emit_trajectory

        res = BenchmarkResult(get("dijkstra"))
        res.seq_cycles = 1000.0
        res.seq_loop_cycles = 800.0
        res.seq_memory = 64
        res.overhead_opt = 1.2
        res.overhead_unopt = 2.0
        res.overhead_rtpriv = 3.5
        for n in (1, 4):
            p = ParallelPoint(n)
            p.loop_speedup = 0.8 * n
            p.total_speedup = 0.7 * n
            p.memory_multiple = float(n)
            p.breakdown = {"work": 100.0 * n, "sync": 5.0,
                           "wait": 2.0, "runtime": 9.0}
            res.expansion[n] = p
            res.rtpriv[n] = ParallelPoint(n)
        path = tmp_path / "BENCH_test.json"
        written = emit_trajectory({"dijkstra": res}, path=str(path))
        assert written == str(path)
        doc = json.loads(path.read_text())
        assert doc["schema"] == 4
        bench = doc["benchmarks"]["dijkstra"]
        assert bench["overheads"]["expansion_opt"] == 1.2
        assert bench["expansion"]["4"]["loop_speedup"] == pytest.approx(3.2)
        assert doc["summary"]["loop_speedup_hmean"]["4"] == pytest.approx(3.2)

    def test_auto_path_name(self, tmp_path, monkeypatch):
        from repro.bench.trajectory import emit_trajectory

        monkeypatch.chdir(tmp_path)
        written = emit_trajectory({})
        assert written.startswith("BENCH_") and written.endswith(".json")
        assert json.loads((tmp_path / written).read_text())["schema"] == 4
