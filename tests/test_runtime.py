"""Parallel runtime tests: scheduling, timing model, race detection."""

import pytest

from repro.frontend import parse_and_analyze
from repro.interp import Machine
from repro.runtime import ParallelError, RaceError, run_parallel
from repro.runtime import sync
from repro.transform import expand_for_threads


def prepare(source, labels=("L",)):
    program, sema = parse_and_analyze(source)
    base = Machine(program, sema)
    base.run()
    result = expand_for_threads(program, sema, list(labels))
    return base, result


DOALL_SRC = """
int buf[16];
int out[12];
int main(void) {
    int i; int k;
    #pragma expand parallel(doall)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        out[i] = buf[15];
    }
    for (i = 0; i < 12; i++) print_int(out[i]);
    return 0;
}
"""

DOACROSS_SRC = """
int buf[16];
int acc;
int main(void) {
    int i; int k;
    #pragma expand parallel(doacross)
    L: for (i = 0; i < 12; i++) {
        for (k = 0; k < 16; k++) buf[k] = i * k + 1;
        acc = acc * 7 + buf[15];
    }
    print_int(acc);
    return 0;
}
"""


class TestDoall:
    def test_output_and_iterations(self):
        base, result = prepare(DOALL_SRC)
        outcome = run_parallel(result, 4)
        assert outcome.output == base.output
        execution = outcome.loop("L")
        assert execution.iterations == 12
        assert sum(t.iterations for t in execution.threads) == 12

    def test_static_chunking_balanced(self):
        _, result = prepare(DOALL_SRC)
        outcome = run_parallel(result, 4)
        per_thread = [t.iterations for t in outcome.loop("L").threads]
        assert per_thread == [3, 3, 3, 3]

    def test_uneven_chunking(self):
        _, result = prepare(DOALL_SRC)
        outcome = run_parallel(result, 5)
        per_thread = [t.iterations for t in outcome.loop("L").threads]
        assert sum(per_thread) == 12 and max(per_thread) - min(per_thread) <= 1

    def test_more_threads_than_iterations(self):
        _, result = prepare(DOALL_SRC)
        outcome = run_parallel(result, 16)
        assert outcome.loop("L").iterations == 12

    def test_makespan_shrinks_with_threads(self):
        _, result = prepare(DOALL_SRC)
        m1 = run_parallel(result, 1).loop("L").makespan
        m4 = run_parallel(result, 4).loop("L").makespan
        assert m4 < m1 / 2

    def test_fork_join_accounted(self):
        _, result = prepare(DOALL_SRC)
        outcome = run_parallel(result, 4)
        assert outcome.loop("L").runtime_cycles == sync.fork_join_cost(4)

    def test_control_variable_final_value(self):
        src = DOALL_SRC.replace("print_int(out[i]);",
                                "print_int(out[i]);").replace(
            "for (i = 0; i < 12; i++) print_int",
            "print_int(i); for (i = 0; i < 12; i++) print_int",
        )
        base, result = prepare(src)
        outcome = run_parallel(result, 4)
        assert outcome.output == base.output  # i == 12 after the loop


class TestDoacross:
    def test_sequential_order_preserved(self):
        base, result = prepare(DOACROSS_SRC)
        for n in (2, 4, 8):
            outcome = run_parallel(result, n)
            assert outcome.output == base.output

    def test_round_robin_assignment(self):
        _, result = prepare(DOACROSS_SRC)
        outcome = run_parallel(result, 4)
        per_thread = [t.iterations for t in outcome.loop("L").threads]
        assert per_thread == [3, 3, 3, 3]

    def test_wait_cycles_appear_with_serial_section(self):
        _, result = prepare(DOACROSS_SRC)
        outcome = run_parallel(result, 8)
        execution = outcome.loop("L")
        assert sum(t.wait_cycles for t in execution.threads) >= 0
        assert sum(t.sync_cycles for t in execution.threads) > 0

    def test_serial_section_bounds_speedup(self):
        """A fully-serial DOACROSS loop cannot speed up."""
        src = """
        int acc;
        int main(void) {
            int i;
            #pragma expand parallel(doacross)
            L: for (i = 0; i < 20; i++) {
                acc = acc * 3 + i;
            }
            print_int(acc);
            return 0;
        }
        """
        base, result = prepare(src)
        m1 = run_parallel(result, 1).loop("L")
        m8 = run_parallel(result, 8).loop("L")
        t1 = m1.makespan + m1.runtime_cycles
        t8 = m8.makespan + m8.runtime_cycles
        assert t8 > t1 * 0.8  # no meaningful speedup

    def test_while_loop_with_break(self):
        src = """
        int acc;
        int n;
        int main(void) {
            #pragma expand parallel(doacross)
            L: while (1) {
                if (n >= 9) break;
                n = n + 1;
                acc = acc + n;
            }
            print_int(acc);
            return 0;
        }
        """
        base, result = prepare(src)
        outcome = run_parallel(result, 4)
        assert outcome.output == base.output == ["45"]


class TestRaceDetection:
    def test_planted_race_detected(self):
        """A loop with genuinely conflicting writes must be caught when
        forced through the DOALL scheduler."""
        src = """
        int shared;
        int out[8];
        int main(void) {
            int i;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 8; i++) {
                out[i] = i;
            }
            print_int(out[7]);
            return 0;
        }
        """
        program, sema = parse_and_analyze(src)
        result = expand_for_threads(program, sema, ["L"])
        # sabotage: make the transformed loop body also write one
        # shared location from every iteration
        from repro.frontend import ast as A
        loop = result.loops[0].loop
        assert any(d.name == "shared" for d in result.program.globals())
        store = A.ExprStmt(A.Assign(
            "=", A.Ident("shared"), A.IntLit(1)
        ))
        loop.body.stmts.append(store)
        from repro.frontend.sema import analyze
        result.sema = analyze(result.program)
        with pytest.raises(RaceError):
            run_parallel(result, 4)

    def test_race_check_optional(self):
        _, result = prepare(DOALL_SRC)
        outcome = run_parallel(result, 4, check_races=False)
        assert outcome.races == []

    def test_disjoint_writes_not_flagged(self):
        _, result = prepare(DOALL_SRC)
        outcome = run_parallel(result, 8)
        assert outcome.races == []


class TestTimingModel:
    def test_bandwidth_ceiling(self):
        """A pure copy loop saturates the memory system at
        MEMORY_PORTS threads."""
        src = """
        int a[512];
        int b[512];
        int main(void) {
            int i;
            for (i = 0; i < 512; i++) a[i] = i;
            #pragma expand parallel(doall)
            L: for (i = 0; i < 512; i++) {
                b[i] = a[i];
            }
            print_int(b[511]);
            return 0;
        }
        """
        _, result = prepare(src)
        m4 = run_parallel(result, 4).loop("L").makespan
        m16 = run_parallel(result, 16).loop("L").makespan
        assert m16 > m4 * 0.5  # nowhere near 4x further scaling

    def test_total_cycles_include_serial_parts(self):
        base, result = prepare(DOALL_SRC)
        outcome = run_parallel(result, 8)
        assert outcome.total_cycles > outcome.loop("L").makespan

    def test_breakdown_categories_nonnegative(self):
        _, result = prepare(DOACROSS_SRC)
        outcome = run_parallel(result, 8)
        bd = outcome.loop("L").breakdown()
        assert all(v >= -1e-6 for v in bd.values())
        assert bd["work"] > 0

    def test_noncanonical_doall_rejected(self):
        src = """
        int out[4];
        int main(void) {
            int i = 0;
            #pragma expand parallel(doall)
            L: while (i < 4) {
                out[i] = i;
                i = i + 1;
            }
            print_int(out[3]);
            return 0;
        }
        """
        program, sema = parse_and_analyze(src)
        result = expand_for_threads(program, sema, ["L"])
        with pytest.raises(ParallelError):
            run_parallel(result, 4)
