"""The resident expansion service: Job value objects, stage-cache
keying/invalidation, concurrent-writer safety, the session pool, and
the serve daemon's wire protocol.

Process-backend cells (the pool's warm sessions) skip on hosts without
``fork`` or a usable ``/dev/shm``; everything else runs anywhere.
"""

import json
import os
import socket
import threading
import time

import pytest

import repro
from repro import expand_and_run
from repro.diagnostics import DiagnosticSink
from repro.obs import Tracer
from repro.runtime import process_backend_available, run_parallel
from repro.service import (
    MISS, CompileOptions, ExpansionService, Job, SessionPool,
    StageCache, StagedCompiler, request, run_job, stage_keys,
)
from repro.service.stages import STAGES
from repro.transform import OptFlags, expand_for_threads
from repro.frontend import parse_and_analyze

_MC_OK, _MC_WHY = process_backend_available()
needs_process = pytest.mark.skipif(
    not _MC_OK, reason=f"process backend unavailable: {_MC_WHY}")

KERNEL = """
int main(void) {
    int n = 64;
    int *a = (int*)malloc(n * sizeof(int));
    int *b = (int*)malloc(n * sizeof(int));
    int i;
    #pragma expand parallel(doall)
    L1: for (i = 0; i < n; i++) { a[i] = i * 2; }
    #pragma expand parallel(doall)
    L2: for (i = 0; i < n; i++) { b[i] = a[i] + 1; }
    int s = 0;
    for (i = 0; i < n; i++) { s = s + b[i]; }
    print_int(s);
    return 0;
}
"""
EXPECTED = ["4096"]


def make_job(**kwargs):
    kwargs.setdefault("source", KERNEL)
    kwargs.setdefault("loop_labels", ("L1", "L2"))
    return Job(**kwargs)


# ---------------------------------------------------------------------------
# Job / CompileOptions value objects
# ---------------------------------------------------------------------------

class TestJobObject:
    def test_roundtrip_through_dict(self):
        job = make_job(nthreads=8, chunk=2, backend="simulated",
                       options=CompileOptions(layout="interleaved",
                                              strict=False))
        clone = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job

    def test_frozen(self):
        job = make_job()
        with pytest.raises(AttributeError):
            job.nthreads = 9
        with pytest.raises(AttributeError):
            job.options.layout = "interleaved"

    def test_validation(self):
        with pytest.raises(TypeError):
            make_job(loop_labels="L1")       # a single string is a bug
        with pytest.raises(ValueError):
            make_job(backend="gpu")
        with pytest.raises(ValueError):
            make_job(nthreads=0)
        with pytest.raises(ValueError):
            CompileOptions(layout="columnar")
        with pytest.raises(ValueError):
            CompileOptions(opt=(True, False))   # needs all 5 toggles
        with pytest.raises(ValueError):
            Job.from_dict({"source": "", "loop_labels": [],
                           "warp_speed": 9})

    def test_optflags_spellings_agree(self):
        assert CompileOptions.make(True) == CompileOptions.make(
            OptFlags.from_bool(True))
        assert CompileOptions.make(False).opt == (False,) * 5

    def test_options_dict_coerced(self):
        job = make_job(options={"layout": "interleaved"})
        assert job.options.layout == "interleaved"


# ---------------------------------------------------------------------------
# deprecation shims on the legacy kwarg surfaces
# ---------------------------------------------------------------------------

class TestLegacyShims:
    def test_expand_and_run_config_kwargs_warn(self):
        with pytest.warns(DeprecationWarning,
                          match="expand_and_run.. is deprecated"):
            outcome = expand_and_run(KERNEL, ["L1", "L2"], nthreads=2,
                                     chunk=2)
        assert outcome.output == EXPECTED

    def test_expand_and_run_job_plus_legacy_conflict(self):
        with pytest.raises(TypeError, match="both job="):
            expand_and_run(KERNEL, ["L1", "L2"], job=make_job())
        with pytest.raises(TypeError, match="both job="):
            expand_and_run(job=make_job(), chunk=2)

    def test_run_parallel_config_kwargs_warn(self):
        program, sema = parse_and_analyze(KERNEL)
        tresult = expand_for_threads(program, sema, ["L1", "L2"])
        with pytest.warns(DeprecationWarning,
                          match="run_parallel.. is deprecated"):
            outcome = run_parallel(tresult, 2, chunk=2)
        assert outcome.output == EXPECTED

    def test_run_parallel_job_plus_legacy_conflict(self):
        program, sema = parse_and_analyze(KERNEL)
        tresult = expand_for_threads(program, sema, ["L1", "L2"])
        with pytest.raises(TypeError, match="both job="):
            run_parallel(tresult, job=make_job(), chunk=2)

    def test_job_path_warns_nothing(self, recwarn):
        outcome = expand_and_run(job=make_job(nthreads=2))
        assert outcome.output == EXPECTED
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


# ---------------------------------------------------------------------------
# stage keying and invalidation
# ---------------------------------------------------------------------------

class TestStageKeys:
    def test_identical_jobs_share_keys(self):
        assert stage_keys(make_job()) == stage_keys(make_job(nthreads=8))

    def test_source_edit_invalidates_every_stage(self):
        a = stage_keys(make_job())
        b = stage_keys(make_job(source=KERNEL.replace("64", "32")))
        assert all(a[s] != b[s] for s in STAGES)

    def test_opt_change_invalidates_expand_onward(self):
        a = stage_keys(make_job())
        b = stage_keys(make_job(options=CompileOptions(opt=(
            True, True, True, True, False))))
        for stage in ("parse", "sema", "profile", "classify"):
            assert a[stage] == b[stage]
        for stage in ("expand", "optimize", "plan", "lower"):
            assert a[stage] != b[stage]

    def test_layout_change_invalidates_expand_onward(self):
        a = stage_keys(make_job())
        b = stage_keys(make_job(
            options=CompileOptions(layout="interleaved")))
        assert a["classify"] == b["classify"]
        assert a["expand"] != b["expand"]
        assert a["lower"] != b["lower"]

    def test_engine_change_invalidates_lower(self):
        a = stage_keys(make_job())
        b = stage_keys(make_job(
            options=CompileOptions(engine="bytecode")))
        assert a["parse"] == b["parse"]
        assert a["lower"] != b["lower"]

    def test_version_bump_invalidates_every_stage(self, monkeypatch):
        a = stage_keys(make_job())
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        b = stage_keys(make_job())
        assert all(a[s] != b[s] for s in STAGES)


class TestStagedCompiler:
    def test_cold_then_warm(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        compiler = StagedCompiler(cache=cache)
        job = make_job()
        cold = compiler.compile(job)
        assert all(v == "miss" for v in cold.report.values())
        warm = compiler.compile(job)
        assert all(v == "hit" for v in warm.report.values())
        # lower-native only joins the chain for --engine native jobs
        assert set(warm.report) == set(STAGES) - {"lower-native"}

    def test_warm_run_is_correct(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        compiler = StagedCompiler(cache=cache)
        compiler.compile(make_job())
        warm = compiler.compile(make_job())
        outcome = run_job(warm, cache=cache)
        assert outcome.output == EXPECTED
        assert outcome.verified

    def test_disk_tier_survives_fresh_process_state(self, tmp_path):
        StagedCompiler(cache=StageCache(root=str(tmp_path))).compile(
            make_job())
        # a fresh cache instance = a daemon restart: memory tier gone,
        # disk tier reloads everything but the unpicklable lower stage
        compiled = StagedCompiler(
            cache=StageCache(root=str(tmp_path))).compile(make_job())
        assert compiled.report["lower"] == "miss"
        assert all(compiled.report[s] == "hit"
                   for s in STAGES
                   if s not in ("lower", "lower-native"))

    def test_source_edit_recompiles(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        compiler = StagedCompiler(cache=cache)
        compiler.compile(make_job())
        edited = compiler.compile(
            make_job(source=KERNEL.replace("i * 2", "i * 3")))
        assert all(v == "miss" for v in edited.report.values())
        outcome = run_job(edited, cache=cache)
        assert outcome.output == ["6112"]

    def test_version_bump_recompiles(self, tmp_path, monkeypatch):
        cache = StageCache(root=str(tmp_path))
        StagedCompiler(cache=cache).compile(make_job())
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        bumped = StagedCompiler(cache=cache).compile(make_job())
        assert all(v == "miss" for v in bumped.report.values())

    def test_corrupt_entry_quarantined_and_recompiled(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        StagedCompiler(cache=cache).compile(make_job())
        plan_key = stage_keys(make_job())["plan"]
        path = cache._entry_path("plan", plan_key)
        assert os.path.exists(path)
        with open(path, "wb") as fh:
            fh.write(b"\x80\x04 not a pickle at all")
        sink = DiagnosticSink()
        fresh = StageCache(root=str(tmp_path), sink=sink)
        compiled = StagedCompiler(cache=fresh, sink=sink).compile(
            make_job())
        codes = [d.code for d in sink.diagnostics]
        assert "CACHE-CORRUPT" in codes
        assert compiled.report["plan"] == "miss"
        assert compiled.report["optimize"] == "hit"
        # the damaged file was dropped and republished clean
        outcome = run_job(compiled, cache=fresh)
        assert outcome.output == EXPECTED

    def test_permissive_chain_vocabulary(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        job = make_job(options=CompileOptions(strict=False))
        compiled = StagedCompiler(cache=cache).compile(job)
        assert set(compiled.report) == {"parse", "sema", "plan",
                                        "lower"}
        warm = StagedCompiler(cache=cache).compile(job)
        assert all(v == "hit" for v in warm.report.values())

    def test_cache_metrics_recorded(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        tracer = Tracer()
        StagedCompiler(cache=cache, tracer=tracer).compile(make_job())
        metrics = tracer.metrics.as_dict()
        assert metrics["cache.miss"] == len(STAGES) - 1
        tracer2 = Tracer()
        StagedCompiler(cache=cache, tracer=tracer2).compile(make_job())
        assert tracer2.metrics.as_dict()["cache.hit"] == len(STAGES) - 1

    def test_cached_baseline(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        compiled = StagedCompiler(cache=cache).compile(make_job())
        run_job(compiled, cache=cache)
        tracer = Tracer()
        run_job(compiled, tracer=tracer, cache=cache)
        assert tracer.metrics.as_dict()["cache.baseline.hit"] == 1


# ---------------------------------------------------------------------------
# cache concurrency: atomic publish + entry locks
# ---------------------------------------------------------------------------

class TestCacheConcurrency:
    def test_concurrent_writers_one_clean_entry(self, tmp_path):
        caches = [StageCache(root=str(tmp_path)) for _ in range(8)]
        barrier = threading.Barrier(len(caches))

        def write(cache):
            barrier.wait()
            cache.put("parse", "deadbeef" * 8, {"payload": 1},
                      durable=True)

        threads = [threading.Thread(target=write, args=(c,))
                   for c in caches]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        fresh = StageCache(root=str(tmp_path))
        assert fresh.get("parse", "deadbeef" * 8) == {"payload": 1}
        stage_dir = tmp_path / "parse" / "de"
        leftovers = [p.name for p in stage_dir.iterdir()
                     if p.name.startswith(".tmp-")
                     or p.name.endswith(".lock")]
        assert leftovers == []

    def test_stale_lock_is_broken(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        key = "ab" * 32
        path = cache._entry_path("sema", key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        lock = path + ".lock"
        with open(lock, "w") as fh:
            fh.write("99999")
        stale = time.time() - 120
        os.utime(lock, (stale, stale))
        cache.put("sema", key, "value", durable=True)
        fresh = StageCache(root=str(tmp_path))
        assert fresh.get("sema", key) == "value"
        assert not os.path.exists(lock)

    def test_memory_tier_spares_volatile_entries(self, tmp_path):
        cache = StageCache(root=str(tmp_path), max_memory_entries=4)
        cache.put("lower", "k-volatile", object(), durable=False)
        for i in range(10):
            cache.put("parse", f"k{i}", i, durable=True)
        # the memory-only artifact outlives every disk-backed one
        assert cache.get("lower", "k-volatile",
                         memory_only=True) is not MISS


# ---------------------------------------------------------------------------
# the session pool
# ---------------------------------------------------------------------------

@needs_process
class TestSessionPool:
    def _compiled(self, cache):
        job = make_job(backend="process", nthreads=2, workers=2)
        return job, StagedCompiler(cache=cache).compile(job)

    def test_acquire_release_reuse(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        pool = SessionPool(max_sessions=2)
        try:
            job, compiled = self._compiled(cache)
            first = run_job(compiled, pool=pool, cache=cache)
            second = run_job(compiled, pool=pool, cache=cache)
            assert first.output == second.output == EXPECTED
            assert not first.session_reused
            assert second.session_reused
            stats = pool.stats()
            assert stats["created"] == 1
            assert stats["reused"] == 1
        finally:
            pool.close()

    def test_program_identity_mismatch_evicts(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        pool = SessionPool(max_sessions=2)
        try:
            job, compiled = self._compiled(cache)
            run_job(compiled, pool=pool, cache=cache)
            # a recompiled artifact (fresh AST objects) must not adopt
            # the old session: its forked workers resolve loops by nid
            recompiled = StagedCompiler(cache=None).compile(job)
            outcome = run_job(recompiled, pool=pool, cache=cache)
            assert outcome.output == EXPECTED
            assert not outcome.session_reused
            assert pool.stats()["evicted"] >= 1
        finally:
            pool.close()

    def test_closed_pool_creates_nothing(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        pool = SessionPool(max_sessions=2)
        pool.close()
        job, compiled = self._compiled(cache)
        outcome = run_job(compiled, pool=None, cache=cache)
        assert outcome.output == EXPECTED
        assert pool.stats()["idle"] == 0


# ---------------------------------------------------------------------------
# the serve daemon (in-process server, real socket client)
# ---------------------------------------------------------------------------

@pytest.fixture
def daemon(tmp_path):
    service = ExpansionService(str(tmp_path / "repro.sock"),
                               cache_root=str(tmp_path / "cache"))
    service.start()
    try:
        yield service
    finally:
        service.shutdown()


class TestServeDaemon:
    def test_ping(self, daemon):
        resp = request(daemon.socket_path, {"op": "ping"})
        assert resp["ok"]
        assert resp["result"]["version"] == repro.__version__

    def test_run_cold_then_warm(self, daemon):
        payload = {"op": "run", "job": make_job(nthreads=2).to_dict()}
        cold = request(daemon.socket_path, payload)["result"]
        warm = request(daemon.socket_path, payload)["result"]
        assert cold["output"] == warm["output"] == "4096"
        assert cold["verified"] and warm["verified"]
        assert cold["cache_hits"] == 0
        assert warm["cache_hits"] == warm["cache_stages"] == len(STAGES) - 1

    def test_stats_op(self, daemon):
        request(daemon.socket_path,
                {"op": "run", "job": make_job().to_dict()})
        stats = request(daemon.socket_path, {"op": "stats"})["result"]
        assert stats["requests"] >= 2
        assert stats["cache"]["misses"]
        assert "pool" in stats

    def test_unknown_op_is_protocol_error(self, daemon):
        resp = request(daemon.socket_path, {"op": "teleport"})
        assert not resp["ok"]
        assert resp["error"]["code"] == "SRV-PROTO"

    def test_invalid_json_is_protocol_error(self, daemon):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.connect(daemon.socket_path)
            sock.sendall(b"{nope\n")
            resp = json.loads(sock.recv(65536).decode())
        assert resp["error"]["code"] == "SRV-PROTO"

    def test_bad_job_is_badreq(self, daemon):
        resp = request(daemon.socket_path,
                       {"op": "run", "job": {"source": "int main"}})
        assert not resp["ok"]
        assert resp["error"]["code"] == "SRV-BADREQ"

    def test_compile_error_is_structured(self, daemon):
        job = make_job(source="int main(void) { return x; }",
                       loop_labels=())
        resp = request(daemon.socket_path,
                       {"op": "run", "job": job.to_dict()})
        assert not resp["ok"]
        assert resp["error"]["code"]
        assert resp["error"]["message"]

    def test_shutdown_handshake(self, tmp_path):
        service = ExpansionService(str(tmp_path / "s.sock"),
                                   cache_root=False)
        service.start()
        resp = request(service.socket_path, {"op": "shutdown"})
        assert resp["result"]["stopping"]
        deadline = time.time() + 10
        while os.path.exists(service.socket_path) \
                and time.time() < deadline:
            time.sleep(0.02)
        assert not os.path.exists(service.socket_path)


@needs_process
class TestServeDaemonProcessBackend:
    def test_warm_session_reuse_over_the_wire(self, tmp_path):
        service = ExpansionService(str(tmp_path / "repro.sock"),
                                   cache_root=str(tmp_path / "cache"))
        service.start()
        try:
            job = make_job(backend="process", nthreads=2, workers=2)
            payload = {"op": "run", "job": job.to_dict()}
            cold = request(service.socket_path, payload)["result"]
            warm = request(service.socket_path, payload)["result"]
            assert cold["output"] == warm["output"] == "4096"
            assert not cold["session_reused"]
            assert warm["session_reused"]
            assert warm["cache_hits"] == warm["cache_stages"]
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# ProcessSession.reset (the pool's warm-reuse primitive)
# ---------------------------------------------------------------------------

@needs_process
class TestSessionReset:
    def test_reset_session_runs_bit_identical(self):
        from repro.runtime.multicore import ProcessSession
        program, sema = parse_and_analyze(KERNEL)
        tresult = expand_for_threads(program, sema, ["L1", "L2"])
        job = make_job(backend="process", nthreads=2, workers=2)
        session = ProcessSession(tresult.program, tresult.sema, 2,
                                 workers=2)
        try:
            first = run_parallel(tresult, job=job, session=session)
        finally:
            pass  # adopted sessions are closed by the runner
        from repro.runtime.multicore import _fingerprint_for
        session2 = ProcessSession(tresult.program, tresult.sema, 2,
                                  workers=2)
        pool = SessionPool(max_sessions=1)
        try:
            session2.pool = pool
            session2._pool_key = pool._key(
                _fingerprint_for(tresult.program), job)
            second = run_parallel(tresult, job=job, session=session2)
            # the runner released it back to the pool; reset + rerun
            assert pool.stats()["idle"] == 1
            reacquired = pool.acquire(tresult, job)
            assert reacquired is session2
            assert reacquired.reused
            third = run_parallel(tresult, job=job, session=reacquired)
            assert (first.output == second.output == third.output
                    == EXPECTED)
        finally:
            pool.close()

    def test_reset_refuses_closed_session(self):
        from repro.runtime.multicore import ProcessSession
        from repro.runtime.parallel import ParallelError
        program, sema = parse_and_analyze(KERNEL)
        tresult = expand_for_threads(program, sema, ["L1", "L2"])
        session = ProcessSession(tresult.program, tresult.sema, 2,
                                 workers=2)
        session.close()
        with pytest.raises(ParallelError):
            session.reset()
