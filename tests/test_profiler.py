"""Dependence profiler tests: Definitions 1-3 on crafted loops."""

import pytest

from repro.analysis import ANTI, FLOW, OUTPUT, profile_loop
from repro.analysis.profiler import find_control_decl
from repro.frontend import ast, parse_and_analyze


def profile(source, label="L"):
    program, sema = parse_and_analyze(source)
    loop = ast.find_loop(program, label)
    return profile_loop(program, sema, loop), program


def wrap(body, prelude="", post=""):
    return f"""
    {prelude}
    int main(void) {{
        int i;
        L: for (i = 0; i < 6; i++) {{
            {body}
        }}
        {post}
        return 0;
    }}
    """


class TestDependenceKinds:
    def test_write_then_read_same_iter_is_independent_flow(self):
        p, _ = profile(wrap("x = i; print_int(x);", "int x;"))
        flows = [e for e in p.ddg.edges if e.kind == FLOW]
        assert flows and all(not e.carried for e in flows)

    def test_carried_flow_across_iterations(self):
        p, _ = profile(wrap("acc = acc + i;", "int acc;"))
        assert any(e.carried and e.kind == FLOW for e in p.ddg.edges)

    def test_covered_write_suppresses_carried_flow(self):
        """Definition 1's refinement: a read covered by a same-iteration
        write is NOT loop-carried flow even though an earlier iteration
        also wrote the address."""
        p, _ = profile(wrap("x = i; y = x;", "int x; int y;"))
        carried_flow = [
            e for e in p.ddg.edges if e.carried and e.kind == FLOW
        ]
        assert not carried_flow

    def test_carried_output_dependence(self):
        p, _ = profile(wrap("x = i;", "int x;"))
        assert any(e.carried and e.kind == OUTPUT for e in p.ddg.edges)

    def test_carried_anti_dependence(self):
        # reads in iterations 0-2, first store in iteration 3: the read
        # of an earlier iteration precedes the write with no store in
        # between -> loop-carried anti
        p, _ = profile(wrap(
            "if (i >= 3) { x = 9; } else { y = x; }", "int x; int y;"
        ))
        assert any(e.carried and e.kind == ANTI for e in p.ddg.edges)

    def test_anti_with_intervening_store_is_independent(self):
        # read-then-write every iteration: the write "renews" the
        # location, so only the same-iteration anti remains (last-access
        # windows, as in SD3-style profilers); the carried reuse shows
        # up as an output dependence instead
        p, _ = profile(wrap("y = x; x = i;", "int x; int y;"))
        assert any(not e.carried and e.kind == ANTI for e in p.ddg.edges)
        assert any(e.carried and e.kind == OUTPUT for e in p.ddg.edges)

    def test_independent_anti_dependence(self):
        p, _ = profile(wrap("y = x + 1; x = i;", "int x; int y;"))
        assert any(not e.carried and e.kind == ANTI for e in p.ddg.edges)

    def test_disjoint_writes_no_carried_deps(self):
        p, _ = profile(wrap("a[i] = i;", "int a[6];"))
        assert not list(p.ddg.carried_edges())


class TestExposure:
    def test_upward_exposed_read_only_global(self):
        p, _ = profile(wrap("s = s * 0 + w;", "int w = 5; int s;"))
        assert p.ddg.upward_exposed

    def test_not_upward_exposed_when_written_first(self):
        p, _ = profile(wrap("x = 1; y = x;", "int x; int y;"))
        # loads of x come after in-loop writes
        x_reads_exposed = p.ddg.upward_exposed & p.ddg.load_sites
        src = wrap("x = 1; y = x;", "int x; int y;")
        # only the loop bound/control reads may be exposed, not x
        program, sema = parse_and_analyze(src)
        # identify x's load site via its object
        for site in x_reads_exposed:
            objs = p.site_objects.get(site, set())
            labels = {p.object_labels[o] for o in objs}
            assert "x" not in labels

    def test_downward_exposed_store(self):
        p, _ = profile(
            wrap("x = i;", "int x;", "print_int(x);")
        )
        assert p.ddg.downward_exposed

    def test_not_downward_exposed_without_later_read(self):
        p, _ = profile(wrap("x = i;", "int x;"))
        assert not p.ddg.downward_exposed

    def test_downward_exposure_via_next_execution(self):
        """A value written by one execution of an (inner) loop and read
        by the next execution counts as used-after-the-loop."""
        src = """
        int x;
        int main(void) {
            int t; int i; int s = 0;
            for (t = 0; t < 3; t++) {
                s = s + x;
                L: for (i = 0; i < 4; i++) {
                    x = i;
                }
            }
            print_int(s);
            return 0;
        }
        """
        p, _ = profile(src)
        assert p.ddg.downward_exposed


class TestByteGranularity:
    def test_recast_overlap_detected(self):
        """The bzip2 pattern: short writes overlapping int reads must
        produce dependences even though no access has equal addresses
        AND sizes."""
        src = """
        int main(void) {
            int *zp = (int*)malloc(8);
            short *sp = (short*)zp;
            int i; int s = 0;
            L: for (i = 0; i < 4; i++) {
                sp[1] = (short)i;      // bytes 2-3
                s = s + zp[0];         // bytes 0-3: overlaps
            }
            print_int(s);
            return 0;
        }
        """
        p, _ = profile(src)
        assert any(e.kind == FLOW for e in p.ddg.edges)

    def test_memset_creates_store_sites(self):
        src = wrap("memset(buf, 0, 16); buf[2] = i; y = buf[2];",
                   "char buf[16]; int y;")
        p, _ = profile(src)
        assert len(p.ddg.store_sites) >= 2


class TestControlVariable:
    def test_control_var_exempt_from_deps(self):
        p, _ = profile(wrap("x = i;", "int x;"))
        # i carries an obvious flow dep (i++ reads i), but it is the
        # scheduler's induction variable: exempted
        for site, objs in p.site_objects.items():
            labels = {p.object_labels[o] for o in objs}
            if "i" in labels:
                assert not p.ddg.edges_of(site) or True

    def test_find_control_decl(self):
        program, sema = parse_and_analyze(
            "int main(void) { int i; L: for (i=0;i<3;i++) { } return 0; }"
        )
        loop = ast.find_loop(program, "L")
        assert find_control_decl(loop).name == "i"

    def test_find_control_decl_while_is_none(self):
        program, sema = parse_and_analyze(
            "int main(void) { L: while (0) { } return 0; }"
        )
        assert find_control_decl(ast.find_loop(program, "L")) is None


class TestBookkeeping:
    def test_iteration_count(self):
        p, _ = profile(wrap("x = i;", "int x;"))
        assert p.iterations == 6

    def test_multiple_executions_merge(self):
        src = """
        int x;
        int main(void) {
            int t; int i;
            for (t = 0; t < 3; t++) {
                L: for (i = 0; i < 5; i++) { x = i; }
            }
            return 0;
        }
        """
        p, _ = profile(src)
        assert p.executions == 3 and p.iterations == 15

    def test_loop_time_fraction(self):
        p, _ = profile(wrap("x = x + i * i;", "int x;"))
        assert 0.0 < p.loop_time_fraction <= 1.0

    def test_site_objects_identify_structures(self):
        src = wrap("buf[i % 4] = i;", "int *buf;",
                   ).replace("int main(void) {",
                             "int main(void) { buf = (int*)malloc(16);")
        p, _ = profile(src)
        labels = set()
        for objs in p.site_objects.values():
            labels |= {p.object_labels[o] for o in objs}
        assert any("malloc" in lbl for lbl in labels)

    def test_dyn_counts_weighting(self):
        p, _ = profile(wrap("x = i; x = i; ", "int x;"))
        assert p.ddg.total_dynamic_accesses() >= 12  # 2 stores x 6 iters

    def test_loop_never_executed_raises(self):
        src = """
        int main(void) {
            int i;
            if (0) {
                L: for (i = 0; i < 3; i++) { }
            }
            return 0;
        }
        """
        program, sema = parse_and_analyze(src)
        loop = ast.find_loop(program, "L")
        with pytest.raises(RuntimeError, match="never executed"):
            profile_loop(program, sema, loop)

    def test_while_loop_with_break(self):
        src = """
        int main(void) {
            int n = 0;
            L: while (1) {
                n++;
                if (n >= 4) break;
            }
            print_int(n);
            return 0;
        }
        """
        p, _ = profile(src)
        assert p.iterations == 4
