"""Access-trace observer and race-checker unit tests."""

from repro.frontend import parse_and_analyze
from repro.interp import (
    FootprintObserver, Machine, RaceChecker, RecordingObserver,
)


def machine_for(source):
    program, sema = parse_and_analyze(source)
    return Machine(program, sema)


SRC = """
int g;
int main(void) {
    int *p = (int*)malloc(8);
    p[0] = 1;
    p[1] = p[0] + 1;
    g = p[1];
    free(p);
    return 0;
}
"""


class TestRecordingObserver:
    def test_events_ordered_and_typed(self):
        machine = machine_for(SRC)
        obs = RecordingObserver()
        machine.observers.append(obs)
        machine.run()
        stores = [e for e in obs.events if e.is_store]
        loads = [e for e in obs.events if not e.is_store]
        assert len(stores) >= 3 and len(loads) >= 2
        # p[0] store precedes its load
        p0_store = next(e for e in stores if e.size == 4)
        p0_load = next(e for e in loads if e.addr == p0_store.addr)
        assert obs.events.index(p0_store) < obs.events.index(p0_load)

    def test_sites_are_node_ids(self):
        machine = machine_for(SRC)
        obs = RecordingObserver()
        machine.observers.append(obs)
        machine.run()
        nids = {n.nid for n in machine.program.walk()}
        assert all(e.site in nids for e in obs.events)


class TestFootprintObserver:
    def test_byte_totals(self):
        machine = machine_for(SRC)
        obs = FootprintObserver()
        machine.observers.append(obs)
        machine.run()
        assert sum(obs.writes.values()) >= 12  # three 4-byte stores
        assert sum(obs.reads.values()) >= 8


class TestRaceChecker:
    def test_disabled_outside_region(self):
        checker = RaceChecker()
        checker.on_access(1, 100, 4, True)
        assert not checker.races()

    def test_conflict_detection(self):
        checker = RaceChecker()
        checker.begin_region()
        checker.current_thread = 0
        checker.on_access(1, 100, 4, True)
        checker.current_thread = 1
        checker.on_access(2, 102, 4, True)   # overlaps bytes 102-103
        races = checker.end_region()
        assert races and races[0][1] == "write-write"

    def test_shared_reads_fine(self):
        checker = RaceChecker()
        checker.begin_region()
        for tid in range(4):
            checker.current_thread = tid
            checker.on_access(1, 100, 4, False)
        assert not checker.end_region()

    def test_read_write_conflict(self):
        checker = RaceChecker()
        checker.begin_region()
        checker.current_thread = 0
        checker.on_access(1, 100, 4, True)
        checker.current_thread = 1
        checker.on_access(2, 100, 4, False)
        races = checker.end_region()
        assert ("read-write" in {kind for _, kind in races})

    def test_same_thread_no_conflict(self):
        checker = RaceChecker()
        checker.begin_region()
        checker.current_thread = 2
        checker.on_access(1, 100, 4, True)
        checker.on_access(2, 100, 4, False)
        assert not checker.end_region()

    def test_exempt_addresses(self):
        checker = RaceChecker()
        checker.exempt = set(range(100, 104))
        checker.begin_region()
        checker.current_thread = 0
        checker.on_access(1, 100, 4, True)
        checker.current_thread = 1
        checker.on_access(2, 100, 4, True)
        assert not checker.end_region()

    def test_regions_reset_state(self):
        checker = RaceChecker()
        checker.begin_region()
        checker.current_thread = 0
        checker.on_access(1, 100, 4, True)
        checker.end_region()
        checker.begin_region()
        checker.current_thread = 1
        checker.on_access(2, 100, 4, True)   # different region: no clash
        assert not checker.end_region()
