"""Type system unit + property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend.ctypes import (
    CHAR, CTypeError, DOUBLE, FLOAT, INT, LONG, SHORT, UINT, VOID, ArrayType, PointerType, StructType, common_arith_type, is_assignable, sizeof,
)


class TestSizes:
    @pytest.mark.parametrize("ctype,size", [
        (CHAR, 1), (SHORT, 2), (INT, 4), (LONG, 8),
        (FLOAT, 4), (DOUBLE, 8),
    ])
    def test_primitive_sizes(self, ctype, size):
        assert sizeof(ctype) == size

    def test_pointer_size_is_8(self):
        assert sizeof(PointerType(CHAR)) == 8

    def test_array_size(self):
        assert sizeof(ArrayType(INT, 10)) == 40

    def test_nested_array_size(self):
        assert sizeof(ArrayType(ArrayType(SHORT, 3), 4)) == 24

    def test_sizeof_void_raises(self):
        with pytest.raises(CTypeError):
            sizeof(VOID)

    def test_sizeof_unsized_array_raises(self):
        with pytest.raises(CTypeError):
            sizeof(ArrayType(INT, None))


class TestStructLayout:
    def test_field_offsets_respect_alignment(self):
        s = StructType("s", [("c", CHAR), ("i", INT), ("d", DOUBLE)])
        assert s.field("c").offset == 0
        assert s.field("i").offset == 4      # padded to int alignment
        assert s.field("d").offset == 8
        assert s.size == 16 and s.align == 8

    def test_tail_padding(self):
        s = StructType("t", [("l", LONG), ("c", CHAR)])
        assert s.size == 16                  # rounded to 8

    def test_pointer_field_alignment(self):
        s = StructType("fatlike", [("p", PointerType(INT)), ("span", LONG)])
        assert s.field("span").offset == 8 and s.size == 16

    def test_recursive_struct_via_pointer(self):
        node = StructType("node")
        node.define([("key", INT), ("next", PointerType(node))])
        assert node.size == 16

    def test_redefinition_raises(self):
        s = StructType("x", [("a", INT)])
        with pytest.raises(CTypeError):
            s.define([("b", INT)])

    def test_duplicate_field_raises(self):
        with pytest.raises(CTypeError):
            StructType("d", [("a", INT), ("a", INT)])

    def test_missing_field_raises(self):
        s = StructType("m", [("a", INT)])
        with pytest.raises(CTypeError):
            s.field("zzz")

    def test_nominal_equality(self):
        assert StructType("same", [("a", INT)]) == StructType("same")
        assert StructType("a1", [("x", INT)]) != StructType("a2", [("x", INT)])


class TestWrapping:
    def test_signed_char_wraps(self):
        assert CHAR.wrap(200) == -56

    def test_unsigned_int_wraps(self):
        assert UINT.wrap(-1) == 0xFFFFFFFF

    def test_int_overflow_wraps_like_c(self):
        assert INT.wrap(0x80000000) == -0x80000000

    def test_float32_truncation(self):
        assert FLOAT.wrap(0.1) != 0.1
        assert abs(FLOAT.wrap(0.1) - 0.1) < 1e-7

    @given(st.integers())
    def test_wrap_idempotent(self, value):
        for ctype in (CHAR, SHORT, INT, LONG, UINT):
            once = ctype.wrap(value)
            assert ctype.wrap(once) == once

    @given(st.integers())
    def test_wrap_range(self, value):
        for ctype in (CHAR, SHORT, INT, LONG):
            wrapped = ctype.wrap(value)
            assert ctype.min_value <= wrapped <= ctype.max_value

    @given(st.integers(), st.integers())
    def test_wrap_is_ring_homomorphism(self, a, b):
        """(a+b) mod 2^n == (a mod 2^n + b mod 2^n) mod 2^n."""
        assert INT.wrap(a + b) == INT.wrap(INT.wrap(a) + INT.wrap(b))
        assert INT.wrap(a * b) == INT.wrap(INT.wrap(a) * INT.wrap(b))


class TestConversions:
    def test_common_type_double_wins(self):
        assert common_arith_type(INT, DOUBLE) == DOUBLE

    def test_common_type_integer_promotion(self):
        assert common_arith_type(CHAR, SHORT) == INT

    def test_common_type_long_wins(self):
        assert common_arith_type(LONG, INT) == LONG

    def test_assignable_arith_mix(self):
        assert is_assignable(INT, DOUBLE)
        assert is_assignable(DOUBLE, CHAR)

    def test_assignable_void_pointer_both_ways(self):
        vp, ip = PointerType(VOID), PointerType(INT)
        assert is_assignable(ip, vp) and is_assignable(vp, ip)

    def test_mismatched_pointers_not_assignable(self):
        assert not is_assignable(PointerType(INT), PointerType(DOUBLE))

    def test_int_pointer_interchange_allowed(self):
        assert is_assignable(PointerType(INT), INT)  # NULL etc.

    def test_decay(self):
        assert ArrayType(INT, 4).decay() == PointerType(INT)
        assert INT.decay() == INT
